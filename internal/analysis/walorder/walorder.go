// Package walorder proves the write-ahead ordering that makes the
// service layer's crash recovery sound: tenant state at sequence k must
// be a pure function of the creation record and journal entries 1..k,
// which holds only if every durable mutation hits the journal before it
// hits memory, every snapshot lands atomically, and no reader trusts a
// journal byte it has not validated.
//
// Three rules, driven by doc-comment directives:
//
//   - W1 (journal-before-apply). Every write to a struct field annotated
//     //selfstab:durable — and every call to a function or interface
//     method annotated //selfstab:applies — must be dominated on all CFG
//     paths by a call to a //selfstab:journal append primitive, unless
//     the enclosing function is part of the replay path
//     (//selfstab:replay) or is itself a journal/applies primitive (the
//     obligation then belongs to its callers).
//   - W2 (snapshot atomicity). In a function annotated
//     //selfstab:snapshot, os.Rename must be dominated on all paths by
//     an (*os.File).Sync — the write-temp→fsync→rename idiom. Anywhere
//     in a package that carries walorder annotations, os.WriteFile is
//     flagged: it renames nothing and syncs nothing.
//   - W3 (torn-tail discipline). In a function annotated
//     //selfstab:journal-read, the error results of the parsing calls
//     that detect torn or corrupt tails — bufio ReadBytes/ReadString,
//     json.Unmarshal, (*json.Decoder).Decode, os.ReadFile — must be
//     consumed, not discarded: a dropped error turns a torn tail into
//     silently replayed garbage.
//
// The domination analysis is a forward must-dataflow over
// internal/analysis/cfg graphs (join = AND): a write is accepted only
// when a journal append provably executed on every path reaching it.
// Function literals are analyzed as separate functions starting from an
// un-journaled state — a deferred or spawned closure cannot inherit a
// domination established on the spawning path.
//
// Annotated roles cross package boundaries as object facts
// (//selfstab:journal and //selfstab:applies export a WalFact), and the
// durable-field set rides a package fact, so writes to an imported
// durable field and calls to an imported applier carry the same
// obligations.
package walorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"selfstab/internal/analysis/cfg"
	"selfstab/internal/analysis/lint"
)

// Directives recognized on field and function doc comments.
const (
	DirDurable     = "//selfstab:durable"
	DirJournal     = "//selfstab:journal"
	DirApplies     = "//selfstab:applies"
	DirReplay      = "//selfstab:replay"
	DirSnapshot    = "//selfstab:snapshot"
	DirJournalRead = "//selfstab:journal-read"
)

// WalFact is exported for every function or interface method annotated
// with a walorder role, so call sites in dependent packages carry the
// same obligations (journal, applies) or grants (replay).
type WalFact struct {
	Role string
}

// AFact marks WalFact as a serializable analysis fact.
func (*WalFact) AFact() {}

// DurablesFact is the package fact listing //selfstab:durable fields,
// keyed "Type.field", so writes to an imported durable field are held
// to the journal-domination rule too.
type DurablesFact struct {
	Fields []string
}

// AFact marks DurablesFact as a serializable analysis fact.
func (*DurablesFact) AFact() {}

// New returns the walorder analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "walorder",
		Doc:  "check that //selfstab:durable mutations are journal-dominated and snapshots are atomic",
		Run:  run,
	}
}

// Dataflow bits. Must-analysis: a bit is set only when the event
// provably happened on every path to the program point.
const (
	bJournaled uint8 = 1 << iota // a journal append executed
	bSynced                      // an fsync (or journal append) executed
)

type analysis struct {
	pass *lint.Pass

	// durables maps locally annotated fields; durableKeys is the same
	// set as "Type.field" strings for the package fact.
	durables    map[*types.Var]string // field → display "Type.field"
	durableKeys []string

	// roles maps locally annotated functions and interface methods to
	// their directive role; roleOrder preserves declaration order so the
	// fact export is deterministic.
	roles     map[*types.Func]string
	roleOrder []*types.Func

	// importedDurables caches DurablesFact sets per package path.
	importedDurables map[string]map[string]bool
}

func run(pass *lint.Pass) (any, error) {
	a := &analysis{
		pass:             pass,
		durables:         make(map[*types.Var]string),
		roles:            make(map[*types.Func]string),
		importedDurables: make(map[string]map[string]bool),
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func); fn != nil {
					if role := directiveRole(d.Doc); role != "" {
						a.setRole(fn, role)
					}
					if d.Body != nil {
						decls = append(decls, d)
					}
				}
			case *ast.GenDecl:
				a.collectTypes(d)
			}
		}
	}

	// Export the annotation surface for dependent packages, in
	// declaration order so fact files are deterministic.
	for _, fn := range a.roleOrder {
		pass.ExportObjectFact(fn, &WalFact{Role: a.roles[fn]})
	}
	if len(a.durableKeys) > 0 {
		sort.Strings(a.durableKeys)
		pass.ExportPackageFact(&DurablesFact{Fields: a.durableKeys})
	}

	durablePkg := len(a.durables) > 0 || len(a.roles) > 0

	for _, d := range decls {
		fn := pass.TypesInfo.Defs[d.Name].(*types.Func)
		role := a.roles[fn]
		exemptW1 := role == "journal" || role == "applies" || role == "replay"
		a.checkBody(d.Body, checkOpts{
			exemptW1:   exemptW1,
			snapshot:   role == "snapshot",
			durablePkg: durablePkg,
		})
		if role == "journal-read" {
			a.checkJournalRead(d)
		}
		// Closures start from an un-journaled state of their own: the
		// spawning path's appends do not dominate a deferred body.
		for _, lit := range funcLits(d.Body) {
			a.checkBody(lit.Body, checkOpts{
				exemptW1:   exemptW1,
				snapshot:   role == "snapshot",
				durablePkg: durablePkg,
			})
		}
	}
	return nil, nil
}

type checkOpts struct {
	exemptW1   bool // enclosing function is journal/applies/replay
	snapshot   bool // enclosing function is an annotated snapshot writer
	durablePkg bool // package carries walorder annotations
}

// walProblem adapts the bit lattice to the cfg solver.
type walProblem struct{ a *analysis }

func (p walProblem) Init() uint8           { return 0 }
func (p walProblem) Join(x, y uint8) uint8 { return x & y }
func (p walProblem) Equal(x, y uint8) bool { return x == y }
func (p walProblem) Transfer(b *cfg.Block, in uint8) uint8 {
	bits := in
	for _, n := range b.Nodes {
		bits |= p.a.producedBits(n)
	}
	return bits
}

// checkBody solves the domination problem over one body and replays
// each block with diagnostics on. Obligations inside a node are checked
// against the bits holding at the node's entry — conservative when a
// single statement both appends and writes, exact everywhere else.
func (a *analysis) checkBody(body *ast.BlockStmt, opts checkOpts) {
	g := cfg.New(body)
	ins := cfg.Solve[uint8](g, walProblem{a})
	for i, b := range g.Blocks {
		bits := ins[i]
		for _, n := range b.Nodes {
			a.checkNode(n, bits, opts)
			bits |= a.producedBits(n)
		}
	}
}

// producedBits scans one CFG node (stopping at nested function
// literals) for calls that establish domination facts.
func (a *analysis) producedBits(n ast.Node) uint8 {
	var bits uint8
	inspectNoLit(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := a.callee(call)
		if fn == nil {
			return
		}
		switch {
		case a.roleOf(fn) == "journal":
			bits |= bJournaled | bSynced
		case isOSFileMethod(fn, "Sync"):
			bits |= bSynced
		}
	})
	return bits
}

// checkNode reports every W1/W2 obligation in one CFG node that the
// current bits do not discharge.
func (a *analysis) checkNode(n ast.Node, bits uint8, opts checkOpts) {
	// W1: durable field writes.
	if !opts.exemptW1 {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				a.checkDurableWrite(lhs, bits)
			}
		case *ast.IncDecStmt:
			a.checkDurableWrite(s.X, bits)
		}
	}
	inspectNoLit(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := a.callee(call)
		if fn == nil {
			return
		}
		// W1: calls to appliers carry the same obligation as the writes
		// they hide.
		if !opts.exemptW1 && a.roleOf(fn) == "applies" && bits&bJournaled == 0 {
			a.pass.Reportf(call.Pos(),
				"call to applier %s is not dominated by a journal append on every path; journal first or mark the caller %s",
				calleeName(fn), DirReplay)
		}
		// W2: rename-after-fsync inside snapshot writers; no WriteFile
		// shortcuts anywhere in a durable package.
		if isPkgFunc(fn, "os", "Rename") && opts.snapshot && bits&bSynced == 0 {
			a.pass.Reportf(call.Pos(),
				"os.Rename is not dominated by an fsync on every path; the snapshot idiom is write-temp, Sync, then Rename")
		}
		if isPkgFunc(fn, "os", "WriteFile") && opts.durablePkg {
			a.pass.Reportf(call.Pos(),
				"os.WriteFile bypasses the write-temp→fsync→rename idiom; route durable writes through a %s function", DirSnapshot)
		}
	})
}

// checkDurableWrite reports a write to a durable field that the current
// bits do not prove journaled.
func (a *analysis) checkDurableWrite(lhs ast.Expr, bits uint8) {
	sel, ok := unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := a.fieldOf(sel)
	if field == nil {
		return
	}
	name, durable := a.durableName(field, sel)
	if !durable || bits&bJournaled != 0 {
		return
	}
	a.pass.Reportf(lhs.Pos(),
		"write to durable field %s is not dominated by a journal append on every path; journal first or mark the function %s",
		name, DirReplay)
}

// checkJournalRead enforces W3 over one annotated reader body: the
// error results of tail-validating parse calls must be consumed.
func (a *analysis) checkJournalRead(d *ast.FuncDecl) {
	handled := make(map[*ast.CallExpr]bool)
	check := func(call *ast.CallExpr, errExpr ast.Expr) {
		fn := a.callee(call)
		if fn == nil || !isTailParser(fn) {
			return
		}
		handled[call] = true
		switch e := errExpr.(type) {
		case nil:
			a.pass.Reportf(call.Pos(),
				"discards the error from %s; torn-tail validation requires checking it", calleeName(fn))
		case *ast.Ident:
			if e.Name == "_" {
				a.pass.Reportf(e.Pos(),
					"blanks the error from %s; torn-tail validation requires checking it", calleeName(fn))
				return
			}
			obj := a.pass.TypesInfo.ObjectOf(e)
			if obj != nil && !identUsedElsewhere(d.Body, a.pass.TypesInfo, obj, e) {
				a.pass.Reportf(e.Pos(),
					"error from %s is assigned to %s but never checked", calleeName(fn), e.Name)
			}
		}
	}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if idx := errResultIndex(a.pass.TypesInfo, call); idx >= 0 && idx < len(n.Lhs) {
						check(call, unparen(n.Lhs[idx]))
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := unparen(n.X).(*ast.CallExpr); ok {
				if errResultIndex(a.pass.TypesInfo, call) >= 0 {
					check(call, nil)
				}
			}
		}
		return true
	})
	// Calls embedded in larger expressions (if conditions, returns,
	// arguments) hand their error to the surrounding code: consumed.
	_ = handled
}

// --- annotation collection ---

// collectTypes records durable fields and annotated interface methods
// from one type declaration group.
func (a *analysis) collectTypes(d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		switch t := ts.Type.(type) {
		case *ast.StructType:
			for _, f := range t.Fields.List {
				if !hasDirective(f.Doc, DirDurable) && !hasDirective(f.Comment, DirDurable) {
					continue
				}
				for _, name := range f.Names {
					v, ok := a.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					key := ts.Name.Name + "." + name.Name
					a.durables[v] = key
					a.durableKeys = append(a.durableKeys, key)
				}
			}
		case *ast.InterfaceType:
			for _, m := range t.Methods.List {
				if len(m.Names) != 1 {
					continue // embedded interface
				}
				role := directiveRole(m.Doc)
				if role == "" {
					role = directiveRole(m.Comment)
				}
				if role == "" {
					continue
				}
				if fn, ok := a.pass.TypesInfo.Defs[m.Names[0]].(*types.Func); ok {
					a.setRole(fn, role)
				}
			}
		}
	}
}

// directiveRole extracts the walorder role from a doc comment group.
func directiveRole(cg *ast.CommentGroup) string {
	switch {
	case hasDirective(cg, DirJournalRead):
		return "journal-read"
	case hasDirective(cg, DirJournal):
		return "journal"
	case hasDirective(cg, DirApplies):
		return "applies"
	case hasDirective(cg, DirReplay):
		return "replay"
	case hasDirective(cg, DirSnapshot):
		return "snapshot"
	}
	return ""
}

func hasDirective(cg *ast.CommentGroup, dir string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == dir || strings.HasPrefix(text, dir+" ") {
			return true
		}
	}
	return false
}

// setRole records a locally annotated function's role, once.
func (a *analysis) setRole(fn *types.Func, role string) {
	if _, ok := a.roles[fn]; !ok {
		a.roleOrder = append(a.roleOrder, fn)
	}
	a.roles[fn] = role
}

// --- resolution helpers ---

// roleOf resolves a callee's walorder role: local annotation first, then
// the exported fact of its defining package.
func (a *analysis) roleOf(fn *types.Func) string {
	fn = fn.Origin()
	if role, ok := a.roles[fn]; ok {
		return role
	}
	if fn.Pkg() == nil || fn.Pkg() == a.pass.Pkg {
		return ""
	}
	var fact WalFact
	if a.pass.ImportObjectFact(fn, &fact) {
		return fact.Role
	}
	return ""
}

// durableName reports whether field is durable (locally annotated, or
// listed in its package's DurablesFact) and its display name.
func (a *analysis) durableName(field *types.Var, sel *ast.SelectorExpr) (string, bool) {
	if name, ok := a.durables[field]; ok {
		return name, true
	}
	if field.Pkg() == nil || field.Pkg() == a.pass.Pkg {
		return "", false
	}
	recv := recvTypeName(a.recvType(sel))
	key := recv + "." + field.Name()
	set, ok := a.importedDurables[field.Pkg().Path()]
	if !ok {
		set = make(map[string]bool)
		var fact DurablesFact
		if a.pass.ImportPackageFact(field.Pkg().Path(), &fact) {
			for _, k := range fact.Fields {
				set[k] = true
			}
		}
		a.importedDurables[field.Pkg().Path()] = set
	}
	return key, set[key]
}

// fieldOf returns the struct field a selector resolves to, or nil.
func (a *analysis) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := a.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// recvType returns the receiver type of a field selection, for naming
// imported durable fields.
func (a *analysis) recvType(sel *ast.SelectorExpr) types.Type {
	if s, ok := a.pass.TypesInfo.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

// callee resolves the static *types.Func a call invokes, or nil for
// builtins, conversions, and function values.
func (a *analysis) callee(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := a.pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := a.pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isTailParser reports whether fn is one of the parse calls whose error
// result is the torn-tail signal.
func isTailParser(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "ReadFile"
	case "encoding/json":
		return fn.Name() == "Unmarshal" || fn.Name() == "Decode"
	case "bufio":
		switch fn.Name() {
		case "ReadBytes", "ReadString", "ReadSlice":
			return true
		}
	}
	return false
}

// errResultIndex returns the index of fn's trailing error result in the
// call's result tuple, or -1.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	if isErrorType(tv.Type) {
		return 0
	}
	if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() > 0 {
		if isErrorType(tup.At(tup.Len() - 1).Type()) {
			return tup.Len() - 1
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// identUsedElsewhere reports whether obj is referenced in body at a
// position other than def (the assignment that bound the error).
func identUsedElsewhere(body *ast.BlockStmt, info *types.Info, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if info.ObjectOf(id) == obj {
			used = true
		}
		return true
	})
	return used
}

// isOSFileMethod reports whether fn is (*os.File).<name>.
func isOSFileMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && recvTypeName(sig.Recv().Type()) == "File"
}

func isPkgFunc(fn *types.Func, pkg, name string) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name &&
		func() bool { sig, ok := fn.Type().(*types.Signature); return ok && sig.Recv() == nil }()
}

// funcLits collects every function literal in body, at any depth.
func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// inspectNoLit walks n without descending into function literals, which
// are analyzed as functions of their own.
func inspectNoLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			f(x)
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeName renders a callee for diagnostics.
func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvTypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func recvTypeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return fmt.Sprint(t)
}
