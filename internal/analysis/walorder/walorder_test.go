package walorder_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "a"), walorder.New())
}

// TestWalorderFacts round-trips the journal/applies roles and the
// durable-field set across a package boundary: walapp's obligations come
// entirely from waldep's exported facts.
func TestWalorderFacts(t *testing.T) {
	resolve := linttest.DirResolver(filepath.Join("testdata", "src"))
	linttest.RunPackages(t, resolve, []string{"walapp"}, walorder.New())
}
