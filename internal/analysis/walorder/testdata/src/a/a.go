// Fixture for the walorder journal-before-apply, snapshot-atomicity,
// and torn-tail rules.
package a

import (
	"bufio"
	"encoding/json"
	"os"
)

type journal struct{ f *os.File }

//selfstab:journal
func (j *journal) Append(rec []byte) error {
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

type box struct {
	jr *journal

	//selfstab:durable
	seq int
	//selfstab:durable
	applied int
}

func (b *box) good(rec []byte) error {
	if err := b.jr.Append(rec); err != nil {
		return err
	}
	b.seq++
	return nil
}

func (b *box) bad() {
	b.seq++ // want `write to durable field box.seq is not dominated by a journal append`
}

func (b *box) branchy(rec []byte, fast bool) {
	if !fast {
		_ = b.jr.Append(rec)
	}
	b.applied = 1 // want `write to durable field box.applied is not dominated by a journal append`
}

func (b *box) deferred(rec []byte) error {
	if err := b.jr.Append(rec); err != nil {
		return err
	}
	// The spawning path's append does not dominate a closure body.
	defer func() {
		b.applied = 2 // want `write to durable field box.applied is not dominated by a journal append`
	}()
	b.seq++
	return nil
}

//selfstab:replay
func (b *box) restore(seq int) {
	b.seq = seq
}

//selfstab:applies
func (b *box) apply(v int) {
	b.applied = v
}

func (b *box) callsApply() {
	b.apply(1) // want `call to applier box.apply is not dominated by a journal append`
}

func (b *box) callsApplyGood(rec []byte) error {
	if err := b.jr.Append(rec); err != nil {
		return err
	}
	b.apply(2)
	return nil
}

//selfstab:snapshot
func writeAtomic(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

//selfstab:snapshot
func writeTorn(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os.Rename is not dominated by an fsync`
}

func writeDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // want `os.WriteFile bypasses the write-temp`
}

//selfstab:journal-read
func parse(r *bufio.Reader) [][]byte {
	var out [][]byte
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break
		}
		var v map[string]int
		if jerr := json.Unmarshal(line, &v); jerr != nil {
			break
		}
		out = append(out, line)
	}
	return out
}

//selfstab:journal-read
func parseSloppy(r *bufio.Reader) []byte {
	line, _ := r.ReadBytes('\n') // want `blanks the error from Reader.ReadBytes`
	var v map[string]int
	json.Unmarshal(line, &v) // want `discards the error from json.Unmarshal`
	return line
}

//selfstab:journal-read
func parseInto(data []byte, err error) int {
	var v map[string]int
	err = json.Unmarshal(data, &v) // want `error from json.Unmarshal is assigned to err but never checked`
	return len(v)
}
