// Fixture dependent package: the journal roles and durable-field set
// arrive as facts from waldep.
package walapp

import "waldep"

func Bad(s *waldep.Store) {
	s.Seq = 1          // want `write to durable field Store.Seq is not dominated by a journal append`
	waldep.Apply(s, 2) // want `call to applier waldep.Apply is not dominated by a journal append`
}

func Good(j *waldep.Journal, s *waldep.Store, rec []byte) error {
	if err := j.Append(rec); err != nil {
		return err
	}
	s.Seq = 3
	waldep.Apply(s, 4)
	return nil
}
