// Fixture dependency package: exports journal/applies roles and a
// durable field for the cross-package fact round-trip.
package waldep

import "os"

type Journal struct{ f *os.File }

//selfstab:journal
func (j *Journal) Append(rec []byte) error {
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

type Store struct {
	//selfstab:durable
	Seq int
}

//selfstab:applies
func Apply(s *Store, v int) {
	s.Seq = v
}
