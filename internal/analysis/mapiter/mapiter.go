// Package mapiter defines an analyzer that flags map iteration whose
// nondeterministic order can reach an output: an appended slice that is
// never canonically sorted, an emitted report, a return value, a
// selection (min/max/argbest) assignment, or a floating-point
// accumulation. This is the exact bug class behind the paper's min-ID
// requirement — SMM's rule R2 is only correct under a consistent total
// order, and the four-cycle counterexample diverges without one — and
// behind the repo's byte-identical-table contract from PR 1.
//
// Order-insensitive uses stay silent: integer accumulation, counting,
// boolean flags, and writes into other maps are commutative, and a
// collected slice that is sorted later in the same function is the
// sanctioned canonicalize-then-consume pattern.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"selfstab/internal/analysis/lint"
)

// New returns the mapiter analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "mapiter",
		Doc: "flag map iteration whose order can reach an output without a canonical sort\n\n" +
			"Reports ranges over maps (and sync.Map.Range) that append to an unsorted\n" +
			"outer slice, print or write, return values derived from the iteration\n" +
			"variables, select a best element, or accumulate floating point.",
	}
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass)
		return nil, nil
	}
	return a
}

func run(pass *lint.Pass) {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					checkLoop(pass, file, n)
				}
			case *ast.CallExpr:
				checkSyncMapRange(pass, n)
			}
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkSyncMapRange flags (*sync.Map).Range outright: its callback order
// is as arbitrary as a map range, and the canonical fix — collect keys,
// sort, then load — cannot be verified through the closure boundary.
func checkSyncMapRange(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Range" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	pass.Reportf(call.Pos(),
		"sync.Map.Range visits entries in arbitrary order; collect and sort keys before consuming")
}

// loopCheck carries the state of one map-range inspection.
type loopCheck struct {
	pass *lint.Pass
	file *ast.File
	loop *ast.RangeStmt
	// iterVars are the objects whose values depend on iteration order:
	// the key/value variables plus locals derived from them inside the
	// loop body.
	iterVars map[types.Object]bool
	// collected maps outer slice objects appended to inside the loop to
	// the position of the first append, pending a later sort.
	collected map[types.Object]token.Pos
}

func checkLoop(pass *lint.Pass, file *ast.File, loop *ast.RangeStmt) {
	c := &loopCheck{
		pass:      pass,
		file:      file,
		loop:      loop,
		iterVars:  map[types.Object]bool{},
		collected: map[types.Object]token.Pos{},
	}
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				c.iterVars[obj] = true // `k, v = range` assignment form
			}
		}
	}
	// Two passes over the body: first propagate order taint into locals
	// assigned from iteration variables, then look for sinks.
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			c.propagate(as)
		}
		return true
	})
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		case *ast.IfStmt:
			c.checkSelection(n)
		case *ast.AssignStmt:
			c.checkAccumulation(n)
		}
		return true
	})
	c.checkCollectedSorted()
}

// propagate marks locals assigned from order-tainted expressions.
func (c *loopCheck) propagate(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := objOf(c.pass, id); obj != nil && c.declaredInLoop(obj) && c.tainted(as.Rhs[i]) {
			c.iterVars[obj] = true
		}
	}
}

// tainted reports whether expr mentions any order-dependent variable.
func (c *loopCheck) tainted(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.iterVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *loopCheck) declaredInLoop(obj types.Object) bool {
	return obj.Pos() >= c.loop.Pos() && obj.Pos() < c.loop.End()
}

// checkCall flags appends to outer slices (pending the sorted-after
// check) and writes to streams, both of which freeze iteration order
// into an output.
func (c *loopCheck) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if obj := rootObj(c.pass, call.Args[0]); obj != nil && !c.declaredInLoop(obj) {
				if _, seen := c.collected[obj]; !seen {
					c.collected[obj] = call.Pos()
				}
			}
			return
		}
	}
	if name, ok := writerCall(c.pass, call); ok {
		c.pass.Reportf(call.Pos(),
			"%s inside map iteration emits output in nondeterministic order; iterate sorted keys instead", name)
	}
}

// writerNames are functions/methods that emit bytes to a stream.
var writerNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func writerCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && writerNames[fn.Name()] {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				return "fmt." + fn.Name(), true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return fn.Name(), true
			}
		}
	}
	return "", false
}

// checkReturn flags returns whose values depend on which entry the
// iteration happened to visit first.
func (c *loopCheck) checkReturn(ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		if c.tainted(res) {
			c.pass.Reportf(ret.Pos(),
				"return inside map iteration depends on encounter order; iterate sorted keys to pick a deterministic witness")
			return
		}
	}
}

// checkSelection flags the argbest pattern: a comparison involving the
// iteration variables guarding an assignment of them to outer state.
// Ties — the paper's min-ID lesson — make the winner order-dependent.
func (c *loopCheck) checkSelection(ifs *ast.IfStmt) {
	if !c.tainted(ifs.Cond) || !hasComparison(ifs.Cond) {
		return
	}
	reported := false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || reported {
			return !reported
		}
		for i, lhs := range as.Lhs {
			obj := rootObj(c.pass, lhs)
			if obj == nil || c.declaredInLoop(obj) {
				continue
			}
			if i < len(as.Rhs) && !c.tainted(as.Rhs[i]) && len(as.Lhs) == 1 {
				continue // e.g. found = true: order-insensitive flag
			}
			if i < len(as.Rhs) && isAppendCall(c.pass, as.Rhs[i]) {
				continue // collection: the sorted-after check owns this
			}
			c.pass.Reportf(as.Pos(),
				"selection over map iteration: ties are broken by encounter order; select over sorted keys (cf. the protocol's min-ID rule)")
			reported = true
			return false
		}
		return true
	})
}

func isAppendCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func hasComparison(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAccumulation flags floating-point += / -= / *= on outer state:
// float arithmetic is not associative, so even a "sum" depends on order.
func (c *loopCheck) checkAccumulation(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		obj := rootObj(c.pass, lhs)
		if obj == nil || c.declaredInLoop(obj) {
			continue
		}
		t := c.pass.TypesInfo.TypeOf(lhs)
		if t == nil {
			continue
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			continue
		}
		switch {
		case b.Info()&types.IsFloat != 0:
			c.pass.Reportf(as.Pos(),
				"floating-point accumulation over map iteration is order-sensitive (non-associative rounding); sum over sorted keys")
		case b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
			c.pass.Reportf(as.Pos(),
				"string concatenation over map iteration freezes encounter order into the result; build from sorted keys")
		}
	}
}

// checkCollectedSorted reports collected slices with no canonical sort
// between the loop and the end of the enclosing function.
func (c *loopCheck) checkCollectedSorted() {
	if len(c.collected) == 0 {
		return
	}
	fn := lint.FuncFor(c.file, c.loop.Pos())
	for obj, pos := range c.collected {
		if fn == nil || !sortedAfter(c.pass, fn, obj, c.loop.End()) {
			c.pass.Reportf(pos,
				"append to %q inside map iteration without a later canonical sort; sort it (sort.* / slices.Sort*) before use", obj.Name())
		}
	}
}

// sortedAfter reports whether obj is passed to a sort/slices sorting
// function after pos within fn.
func sortedAfter(pass *lint.Pass, fn ast.Node, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		callee, ok := pass.TypesInfo.Uses[selIdent(call.Fun)].(*types.Func)
		if !ok || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(pass, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func selIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// objOf resolves an identifier to its object via Defs then Uses.
func objOf(pass *lint.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// rootObj returns the object at the root of an lvalue-ish expression:
// x, x.f, x[i] all resolve to x's object.
func rootObj(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(pass, t)
		case *ast.SelectorExpr:
			// For s.field prefer the root variable; for pkg.Var the
			// selection resolves through the package name.
			if _, ok := pass.TypesInfo.Uses[selBase(t)].(*types.PkgName); ok {
				return pass.TypesInfo.Uses[t.Sel]
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func selBase(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{Name: ""}
}
