// Package a is the mapiter fixture: map-iteration order leaking into
// outputs is a violation; canonicalize-then-consume is the fixed form.
package a

import (
	"fmt"
	"sort"
	"sync"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration without a later canonical sort`
	}
	return keys
}

// collectSorted is the fixed form: the collected slice is canonically
// sorted before anything consumes it.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printLoop(m map[string]int, total *int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside map iteration emits output in nondeterministic order`
	}
}

func argbest(m map[int]int) (int, int) {
	best, bestK := -1, -1
	for k, v := range m {
		if v > best {
			best, bestK = v, k // want `selection over map iteration: ties are broken by encounter order`
		}
	}
	return best, bestK
}

// argbestSorted is the fixed form of the paper's min-ID lesson: iterate
// keys in a total order so ties break deterministically.
func argbestSorted(m map[int]int) (int, int) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	best, bestK := -1, -1
	for _, k := range keys {
		if m[k] > best {
			best, bestK = m[k], k
		}
	}
	return best, bestK
}

func earlyReturn(m map[int]int) int {
	for k := range m {
		if k > 10 {
			return k // want `return inside map iteration depends on encounter order`
		}
	}
	return -1
}

// allCheck is fine: the returned value carries no iteration data, so it
// is the order-insensitive exists/forall pattern.
func allCheck(m map[int]int) bool {
	for _, v := range m {
		if v < 0 {
			return false
		}
	}
	return true
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration is order-sensitive`
	}
	return sum
}

func stringConcat(m map[string]int) string {
	out := ""
	for k := range m {
		kk := k + ";"
		out += kk // want `string concatenation over map iteration freezes encounter order`
	}
	return out
}

// filterCollect is fine: conditional collection followed by a canonical
// sort is the sanctioned fix for selection and emission alike.
func filterCollect(m map[int]int, cutoff int) []int {
	var big []int
	for k, v := range m {
		if v > cutoff {
			big = append(big, k)
		}
	}
	sort.Ints(big)
	return big
}

// intSum is fine: integer addition commutes.
func intSum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// reindex is fine: writes into another map land on distinct keys.
func reindex(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func syncRange(sm *sync.Map) {
	sm.Range(func(k, v any) bool { return true }) // want `sync.Map.Range visits entries in arbitrary order`
}

func suppressedScan(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore mapiter consumer deduplicates into a set, order irrelevant
		keys = append(keys, k)
	}
	return keys
}
