package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/verify"
)

func runSMM(t *testing.T, g *graph.Graph, seed int64) (*Lockstep[core.Pointer], Result) {
	t.Helper()
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	if seed >= 0 {
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	}
	l := NewLockstep[core.Pointer](p, cfg)
	res := l.Run(g.N() + 2)
	return l, res
}

func TestSMMStabilizesOnPath(t *testing.T) {
	l, res := runSMM(t, graph.Path(6), -1)
	if !res.Stable {
		t.Fatalf("not stable: %v", res)
	}
	if res.Rounds > 7 {
		t.Fatalf("rounds %d exceed n+1=7", res.Rounds)
	}
	if err := verify.IsMaximalMatching(l.Config().G, core.MatchingOf(l.Config())); err != nil {
		t.Fatal(err)
	}
}

func TestSMMTheorem1AcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := map[string]func() *graph.Graph{
		"path16":   func() *graph.Graph { return graph.Path(16) },
		"cycle17":  func() *graph.Graph { return graph.Cycle(17) },
		"star12":   func() *graph.Graph { return graph.Star(12) },
		"k9":       func() *graph.Graph { return graph.Complete(9) },
		"k44":      func() *graph.Graph { return graph.CompleteBipartite(4, 4) },
		"grid45":   func() *graph.Graph { return graph.Grid(4, 5) },
		"tree20":   func() *graph.Graph { return graph.RandomTree(20, rng) },
		"gnp20":    func() *graph.Graph { return graph.RandomConnected(20, 0.2, rng) },
		"disk20":   func() *graph.Graph { g, _ := graph.RandomUnitDisk(20, 0.2, rng); return g },
		"isolated": func() *graph.Graph { return graph.New(5) },
	}
	for name, gen := range gens {
		g := gen()
		for trial := 0; trial < 10; trial++ {
			l, res := runSMM(t, g, int64(trial))
			if !res.Stable {
				t.Fatalf("%s trial %d: %v", name, trial, res)
			}
			if res.Rounds > g.N()+1 {
				t.Fatalf("%s trial %d: %d rounds exceeds Theorem 1 bound %d",
					name, trial, res.Rounds, g.N()+1)
			}
			if err := verify.IsMaximalMatching(g, core.MatchingOf(l.Config())); err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
		}
	}
}

// Lemma 1 closure: matched pairs never unmatch during a run.
func TestSMMLemma1MatchingMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(15, 0.25, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		l := NewLockstep[core.Pointer](p, cfg)
		prev := map[graph.Edge]bool{}
		res := l.RunHook(g.N()+2, func(round int, c core.Config[core.Pointer]) {
			cur := map[graph.Edge]bool{}
			for _, e := range core.MatchingOf(c) {
				cur[e] = true
			}
			for e := range prev {
				if !cur[e] {
					t.Fatalf("trial %d round %d: matched edge %v unmatched", trial, round, e)
				}
			}
			prev = cur
		})
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
	}
}

// Lemma 7: A' and PA are empty at every time t >= 1, and all observed
// type transitions obey the Figure 3 diagram.
func TestSMMLemma7AndTransitionDiagram(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		before := core.ClassifySMM(cfg)
		l := NewLockstep[core.Pointer](p, cfg)
		var m core.TransitionMatrix
		res := l.RunHook(g.N()+2, func(round int, c core.Config[core.Pointer]) {
			after := core.ClassifySMM(c)
			m.Record(before, after)
			cen := core.CensusOf(after)
			if cen[core.TypeA1] != 0 || cen[core.TypePA] != 0 {
				t.Fatalf("trial %d round %d: A'=%d PA=%d nonzero (Lemma 7)",
					trial, round, cen[core.TypeA1], cen[core.TypePA])
			}
			before = after
		})
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if v := m.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: forbidden transitions %v", trial, v)
		}
	}
}

// Lemma 10: from t >= 1, if moves happen at t and t+1 then |M| grows by
// at least 2 over those two rounds.
func TestSMMLemma10MatchingGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(14, 0.3, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		l := NewLockstep[core.Pointer](p, cfg)
		var sizes []int // matched-node counts after each round
		res := l.RunHook(g.N()+2, func(round int, c core.Config[core.Pointer]) {
			sizes = append(sizes, 2*len(core.MatchingOf(c)))
		})
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		// sizes[k] is |M| after round k+1. Lemma 10 (t >= 1): if a move
		// occurred in rounds t+1 and t+2 then sizes grows by >= 2.
		for k := 0; k+2 < len(sizes); k++ {
			if sizes[k+2] < sizes[k]+2 {
				t.Fatalf("trial %d: |M| after rounds %d..%d = %d,%d — grew < 2",
					trial, k+1, k+3, sizes[k], sizes[k+2])
			}
		}
	}
}

// The Section 3 counterexample: on C4, arbitrary (clockwise) proposals
// oscillate forever with period 2.
func TestSMMArbitraryCounterexample(t *testing.T) {
	g := graph.Cycle(4)
	p := core.NewSMMArbitrary()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := NewLockstep[core.Pointer](p, cfg)
	res := l.Run(1000)
	if res.Stable {
		t.Fatalf("counterexample stabilized: %v", res)
	}
	if res.Rounds != 1000 {
		t.Fatalf("rounds = %d, want 1000 (ran to limit)", res.Rounds)
	}
	// Verify the period-2 oscillation: after an even number of rounds all
	// pointers are null again.
	for _, s := range l.Config().States {
		if s != core.Null {
			t.Fatalf("after even rounds states = %v, want all null", l.Config().States)
		}
	}
}

// The same selection policy stabilizes fine when proposals are consistent
// (max-ID is a total order, so the proof carries over).
func TestSMMMaxIDPolicyStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		p := &core.SMM{Proposal: core.ProposeMaxID}
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		l := NewLockstep[core.Pointer](p, cfg)
		res := l.Run(g.N() + 2)
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(l.Config())); err != nil {
			t.Fatal(err)
		}
	}
}

func runSMI(g *graph.Graph, seed int64) (*Lockstep[bool], Result) {
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	if seed >= 0 {
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	}
	l := NewLockstep[bool](p, cfg)
	res := l.Run(2*g.N() + 2)
	return l, res
}

func TestSMITheorem2AcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gens := []func() *graph.Graph{
		func() *graph.Graph { return graph.Path(16) },
		func() *graph.Graph { return graph.Cycle(15) },
		func() *graph.Graph { return graph.Star(10) },
		func() *graph.Graph { return graph.Complete(8) },
		func() *graph.Graph { return graph.Grid(4, 4) },
		func() *graph.Graph { return graph.RandomConnected(24, 0.15, rng) },
		func() *graph.Graph { return graph.New(6) },
	}
	for gi, gen := range gens {
		g := gen()
		for trial := 0; trial < 10; trial++ {
			l, res := runSMI(g, int64(trial))
			if !res.Stable {
				t.Fatalf("gen %d trial %d: %v", gi, trial, res)
			}
			if res.Rounds > g.N()+1 {
				t.Fatalf("gen %d trial %d: %d rounds exceeds O(n) bound n+1=%d",
					gi, trial, res.Rounds, g.N()+1)
			}
			if err := verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())); err != nil {
				t.Fatalf("gen %d trial %d: %v", gi, trial, err)
			}
		}
	}
}

// The largest-ID node always ends up in the MIS (Theorem 2 proof sketch:
// it enters at t=1 and never leaves).
func TestSMILargestAlwaysEnters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		l, res := runSMI(g, int64(trial))
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if !l.Config().States[g.N()-1] {
			t.Fatalf("trial %d: largest node %d not in MIS", trial, g.N()-1)
		}
	}
}

// Closure: a legitimate state (any MIS written greedily) is a fixed point.
func TestSMIClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		// Greedy MIS by descending ID — matches the protocol's ID order.
		cfg := core.NewConfig[bool](g)
		for v := g.N() - 1; v >= 0; v-- {
			blocked := false
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if cfg.States[u] && u > graph.NodeID(v) {
					blocked = true
					break
				}
			}
			cfg.States[v] = !blocked
		}
		l := NewLockstep[bool](core.NewSMI(), cfg)
		if got := l.Step(); got != 0 {
			t.Fatalf("trial %d: legitimate state had %d moves", trial, got)
		}
	}
}

// SMM closure: a stable configuration stays stable forever.
func TestSMMClosure(t *testing.T) {
	g := graph.Path(6)
	l, res := runSMM(t, g, 3)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	for round := 0; round < 5; round++ {
		if l.Step() != 0 {
			t.Fatal("stable configuration moved")
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Rounds: 5, Moves: 12, Stable: true}
	if r.String() != "stable in 5 rounds (12 moves)" {
		t.Fatalf("String = %q", r.String())
	}
	r.Stable = false
	if r.String() != "NOT stable after 5 rounds (12 moves)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestRunHonorsLimit(t *testing.T) {
	g := graph.Cycle(4)
	p := core.NewSMMArbitrary()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := NewLockstep[core.Pointer](p, cfg)
	res := l.Run(7)
	if res.Stable || res.Rounds != 7 {
		t.Fatalf("res = %v, want 7 unstable rounds", res)
	}
	if l.Rounds() != 7 || l.Moves() != 7*4 {
		t.Fatalf("Rounds=%d Moves=%d", l.Rounds(), l.Moves())
	}
}

// Property: SMM from any random connected graph and any initial state
// stabilizes within n+1 rounds to a maximal matching (Theorem 1).
func TestQuickSMMTheorem1(t *testing.T) {
	f := func(seed int64, size uint8, pTenths uint8) bool {
		n := 3 + int(size%30)
		prob := 0.05 + float64(pTenths%10)/10.0*0.5
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, prob, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		l := NewLockstep[core.Pointer](p, cfg)
		res := l.Run(n + 1)
		return res.Stable &&
			verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: SMI from any random connected graph and initial bits
// stabilizes within n+1 rounds to an MIS (Theorem 2).
func TestQuickSMITheorem2(t *testing.T) {
	f := func(seed int64, size uint8, pTenths uint8) bool {
		n := 3 + int(size%30)
		prob := 0.05 + float64(pTenths%10)/10.0*0.5
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, prob, rng)
		p := core.NewSMI()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rng)
		l := NewLockstep[bool](p, cfg)
		res := l.Run(n + 1)
		return res.Stable &&
			verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
