// Package sim provides the reference executor for protocols in the
// synchronous beacon model: a deterministic lockstep simulator in which
// every round each node observes the round-t states of all its neighbors
// and all privileged nodes move simultaneously. A round here corresponds
// exactly to the paper's "period of time in which each node in the system
// receives beacon messages from all its neighbors".
package sim

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Result summarizes a run.
type Result struct {
	// Rounds is the number of rounds in which at least one node moved —
	// the paper's stabilization time. If Stable is false, Rounds equals
	// the round limit.
	Rounds int
	// Moves is the total number of individual node moves.
	Moves int
	// Stable reports whether a fixed point was reached within the limit.
	Stable bool
}

// String renders e.g. "stable in 5 rounds (12 moves)".
func (r Result) String() string {
	if r.Stable {
		return fmt.Sprintf("stable in %d rounds (%d moves)", r.Rounds, r.Moves)
	}
	return fmt.Sprintf("NOT stable after %d rounds (%d moves)", r.Rounds, r.Moves)
}

// Instance is the protocol-agnostic face of a running simulation, used by
// the experiment harness to drive heterogeneous protocols uniformly.
type Instance interface {
	// Name identifies the protocol under simulation.
	Name() string
	// Step executes one synchronous round and returns how many nodes moved.
	Step() int
	// Run drives Step until a round with zero moves or until maxRounds
	// rounds with moves have executed.
	Run(maxRounds int) Result
	// Rounds returns the number of rounds with moves executed so far.
	Rounds() int
	// Moves returns the total moves executed so far.
	Moves() int
}

// Lockstep runs one protocol on one configuration in lockstep rounds.
// It is the reference semantics the beacon simulator and the concurrent
// runtime are validated against.
type Lockstep[S comparable] struct {
	p      core.Protocol[S]
	cfg    core.Config[S]
	next   []S
	rounds int
	moves  int
	// peerFilter, when non-nil, intercepts every neighbor-state read of a
	// round with (viewer, neighbor, fresh state). It is how the fault
	// layer serves stale views (beacon-loss bursts, frozen neighbor
	// tables) without touching the true states; nil in normal runs.
	peerFilter func(viewer, nbr graph.NodeID, fresh S) S
}

// NewLockstep wraps protocol p over configuration cfg. The configuration
// is used in place (not copied): callers observing cfg see the evolving
// states.
func NewLockstep[S comparable](p core.Protocol[S], cfg core.Config[S]) *Lockstep[S] {
	return &Lockstep[S]{p: p, cfg: cfg, next: make([]S, len(cfg.States))}
}

// Name implements Instance.
func (l *Lockstep[S]) Name() string { return l.p.Name() }

// Config exposes the current configuration.
func (l *Lockstep[S]) Config() core.Config[S] { return l.cfg }

// Rounds implements Instance.
func (l *Lockstep[S]) Rounds() int { return l.rounds }

// Moves implements Instance.
func (l *Lockstep[S]) Moves() int { return l.moves }

// Step implements Instance: every node evaluates its rules against the
// current configuration and all resulting states are installed at once.
func (l *Lockstep[S]) Step() int {
	moved := 0
	// One Peer closure serves every node this round: it reads the shared
	// pre-round state vector, so hoisting it out of the loop removes the
	// dominant per-node allocation of the hot path.
	states := l.cfg.States
	peer := func(j graph.NodeID) S { return states[j] }
	for v := range l.cfg.States {
		id := graph.NodeID(v)
		pv := peer
		if l.peerFilter != nil {
			// Fault runs need the viewer's identity per read; the shared
			// closure (which avoids the allocation) cannot carry it.
			pv = func(j graph.NodeID) S { return l.peerFilter(id, j, states[j]) }
		}
		next, m := l.p.Move(core.View[S]{
			ID:   id,
			Self: states[v],
			Nbrs: l.cfg.G.Neighbors(id),
			Peer: pv,
		})
		l.next[v] = next
		if m {
			moved++
		}
	}
	copy(l.cfg.States, l.next)
	if moved > 0 {
		l.rounds++
		l.moves += moved
	}
	return moved
}

// Run implements Instance.
func (l *Lockstep[S]) Run(maxRounds int) Result {
	return l.RunHook(maxRounds, nil)
}

// RunHook is Run with an observation hook invoked after every round that
// had at least one move, receiving the 1-based round index and the
// post-round configuration. The hook must not mutate the configuration.
func (l *Lockstep[S]) RunHook(maxRounds int, hook func(round int, cfg core.Config[S])) Result {
	start := l.rounds
	for l.rounds-start < maxRounds {
		if l.Step() == 0 {
			return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: true}
		}
		if hook != nil {
			hook(l.rounds-start, l.cfg)
		}
	}
	// One more probe: the limit-th round may have reached the fixed point.
	stable := l.quiescent()
	return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: stable}
}

// quiescent reports whether no node is privileged, without mutating state.
func (l *Lockstep[S]) quiescent() bool {
	for v := range l.cfg.States {
		if _, m := l.p.Move(l.cfg.View(graph.NodeID(v))); m {
			return false
		}
	}
	return true
}

// Stable reports whether the current configuration is a fixed point.
func (l *Lockstep[S]) Stable() bool { return l.quiescent() }

var _ Instance = (*Lockstep[bool])(nil)
