// Package sim provides the reference executor for protocols in the
// synchronous beacon model: a deterministic lockstep simulator in which
// every round each node observes the round-t states of all its neighbors
// and all privileged nodes move simultaneously. A round here corresponds
// exactly to the paper's "period of time in which each node in the system
// receives beacon messages from all its neighbors".
//
// Two engines share the Lockstep type. The default (NewLockstep) is the
// active-frontier engine: after each round only nodes whose local view
// may have changed — movers, nodes whose state changed, and the
// neighbors of the latter — are enqueued for evaluation next round.
// Because Move is a pure function of the local view (enforced by the
// purity analyzer; see DESIGN.md, "Active-frontier scheduling"), a
// node outside the frontier is guaranteed to be a no-op, so every Result,
// trace, and state sequence is byte-identical to the full scan. The
// reference engine (NewReferenceLockstep) keeps the plain evaluate-
// everything loop; the metamorphic suite replays random workloads on
// both and demands equality.
package sim

import (
	"context"
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Result summarizes a run.
type Result struct {
	// Rounds is the number of rounds in which at least one node moved —
	// the paper's stabilization time. If Stable is false, Rounds equals
	// the round limit.
	Rounds int
	// Moves is the total number of individual node moves.
	Moves int
	// Stable reports whether a fixed point was reached within the limit.
	Stable bool
}

// String renders e.g. "stable in 5 rounds (12 moves)".
func (r Result) String() string {
	if r.Stable {
		return fmt.Sprintf("stable in %d rounds (%d moves)", r.Rounds, r.Moves)
	}
	return fmt.Sprintf("NOT stable after %d rounds (%d moves)", r.Rounds, r.Moves)
}

// Instance is the protocol-agnostic face of a running simulation, used by
// the experiment harness to drive heterogeneous protocols uniformly.
type Instance interface {
	// Name identifies the protocol under simulation.
	Name() string
	// Step executes one synchronous round and returns how many nodes moved.
	Step() int
	// Run drives Step until a round with zero moves or until maxRounds
	// rounds with moves have executed.
	Run(maxRounds int) Result
	// Rounds returns the number of rounds with moves executed so far.
	Rounds() int
	// Moves returns the total moves executed so far.
	Moves() int
}

// filteredViewer is the reusable viewer-aware peer reader of fault runs:
// one value per executor, re-targeted per node by writing viewer, so the
// peerFilter path allocates nothing per node (the closure over the
// pointer is created once at construction).
type filteredViewer[S comparable] struct {
	viewer graph.NodeID
	states []S
	filter func(viewer, nbr graph.NodeID, fresh S) S
}

func (f *filteredViewer[S]) read(j graph.NodeID) S {
	return f.filter(f.viewer, j, f.states[j])
}

// Lockstep runs one protocol on one configuration in lockstep rounds.
// It is the reference semantics the beacon simulator and the concurrent
// runtime are validated against.
type Lockstep[S comparable] struct {
	p      core.Protocol[S]
	cfg    core.Config[S]
	next   []S
	rounds int
	moves  int
	// peerFilter, when non-nil, intercepts every neighbor-state read of a
	// round with (viewer, neighbor, fresh state). It is how the fault
	// layer serves stale views (beacon-loss bursts, frozen neighbor
	// tables) without touching the true states; nil in normal runs.
	peerFilter func(viewer, nbr graph.NodeID, fresh S) S

	// fullScan selects the reference engine: every node every round.
	fullScan bool
	// csr is the flat adjacency snapshot serving all neighbor reads; it
	// is rebuilt (and the frontier fully re-dirtied) whenever the
	// topology's version moves without a DirtyEdge notification.
	csr       *graph.CSR
	frontier  *graph.Frontier
	movedBuf  []bool         // per-node active flag of the current round
	activeBuf []graph.NodeID // reusable frontier drain buffer

	// peerFn and filteredFn are the two per-round Peer readers, allocated
	// once here instead of once per round (or, pre-frontier, once per
	// node per round on the filtered path).
	peerFn     func(graph.NodeID) S
	fv         filteredViewer[S]
	filteredFn func(graph.NodeID) S

	// batch, when the protocol provides one, evaluates a whole round in a
	// single call on the unfiltered path — no View construction and no
	// interface dispatch per node. It is nil for wrapped or third-party
	// protocols, which take the per-node Move loop. installer is the
	// matching fast path for the install half of the round; it
	// additionally prunes the next frontier to the protocol's true read
	// dependencies instead of whole closed neighborhoods.
	batch     core.BatchEvaluator[S]
	installer core.BatchInstaller[S]

	// sh, when non-nil, switches Step to the sharded engine: the node ID
	// space is partitioned into contiguous ranges, each with its own
	// frontier, and rounds run as barrier-separated shard phases (see
	// sharded.go). All observable behavior is unchanged.
	sh *shardRT[S]
}

// NewLockstep wraps protocol p over configuration cfg with the
// active-frontier engine. The configuration is used in place (not
// copied): callers observing cfg see the evolving states.
//
// Callers that mutate cfg.States or the topology directly between
// rounds must either call Run (which re-dirties everything at entry) or
// notify the engine through DirtyState/DirtyEdge; the fault adapters do
// the latter. Topology edits are self-detected via graph.Version.
func NewLockstep[S comparable](p core.Protocol[S], cfg core.Config[S]) *Lockstep[S] {
	l := &Lockstep[S]{
		p:         p,
		cfg:       cfg,
		next:      make([]S, len(cfg.States)),
		frontier:  graph.NewFrontier(len(cfg.States)),
		movedBuf:  make([]bool, len(cfg.States)),
		activeBuf: make([]graph.NodeID, 0, len(cfg.States)),
		fullScan:  referenceScan.Load(),
	}
	states := cfg.States // the slice header is stable; only elements change
	l.peerFn = func(j graph.NodeID) S { return states[j] }
	l.filteredFn = l.fv.read
	l.batch, _ = p.(core.BatchEvaluator[S])
	l.installer, _ = p.(core.BatchInstaller[S])
	if k := int(defaultShards.Load()); k > 1 && !l.fullScan {
		l.attachShards(k)
	}
	return l
}

// NewReferenceLockstep wraps p over cfg with the full-scan reference
// engine: every node is evaluated every round, exactly the paper's
// round structure with no scheduling shortcut. It exists as the oracle
// the metamorphic tests compare the frontier engine against.
func NewReferenceLockstep[S comparable](p core.Protocol[S], cfg core.Config[S]) *Lockstep[S] {
	l := NewLockstep(p, cfg)
	l.fullScan = true
	l.sh = nil // the reference engine wins over the sharding seam
	return l
}

// Name implements Instance.
func (l *Lockstep[S]) Name() string { return l.p.Name() }

// Config exposes the current configuration.
func (l *Lockstep[S]) Config() core.Config[S] { return l.cfg }

// Rounds implements Instance.
func (l *Lockstep[S]) Rounds() int { return l.rounds }

// Moves implements Instance.
func (l *Lockstep[S]) Moves() int { return l.moves }

// DirtyState marks node v's closed neighborhood for re-evaluation after
// an external write to States[v] (a memory-corruption fault, a crash
// resurrection): v's own view changed, and v's state is part of every
// neighbor's view.
func (l *Lockstep[S]) DirtyState(v graph.NodeID) {
	l.dirty(v)
	for _, w := range l.cfg.G.Neighbors(v) {
		l.dirty(w)
	}
}

// dirty marks one node for re-evaluation, routing to the owning shard's
// frontier on the sharded engine.
//
//selfstab:noalloc
func (l *Lockstep[S]) dirty(v graph.NodeID) {
	if l.sh != nil {
		l.sh.mark(v)
		return
	}
	l.frontier.Add(v)
}

// DirtyView marks node v alone for re-evaluation: its effective view
// changed without any state changing, e.g. a stale-read pin was
// installed on or expired from its peer reads.
func (l *Lockstep[S]) DirtyView(v graph.NodeID) {
	l.dirty(v)
}

// DirtyEdge re-syncs the adjacency snapshot after the caller mutated the
// topology on edge {u,v} and re-dirties exactly the affected closed
// neighborhoods: both endpoints (their neighbor lists changed, and link
// removal may have repaired their states) and the endpoints' current
// neighbors (whose views contain those states). Calling it after every
// hooked topology edit keeps the self-detection path (graph.Version →
// full re-dirty) for unhooked edits only.
func (l *Lockstep[S]) DirtyEdge(u, v graph.NodeID) {
	if !l.csr.Fresh(l.cfg.G) {
		l.csr = l.cfg.G.Snapshot()
		if l.sh != nil {
			// Ranges depend only on (n, k) and stay put, but the halo
			// index follows the edge set: rebuild it so the next absorb
			// phase still covers every cross-shard mark.
			l.sh.part = graph.NewPartition(l.csr, l.sh.k)
		}
	}
	for _, x := range [2]graph.NodeID{u, v} {
		l.dirty(x)
		for _, w := range l.csr.Neighbors(x) {
			l.dirty(w)
		}
	}
}

// Step implements Instance: every frontier node evaluates its rules
// against the current configuration and all resulting states are
// installed at once. Non-frontier nodes are provably no-ops (their view
// is unchanged since they last evaluated inactive), so the returned
// move count equals the full scan's. Steady-state rounds allocate
// nothing (pinned by noalloc and the bench gate); the suppressed cold
// paths below run only on topology resync or for protocols without
// batch kernels.
//
//selfstab:noalloc
func (l *Lockstep[S]) Step() int {
	if l.sh != nil {
		return l.stepSharded()
	}
	if !l.csr.Fresh(l.cfg.G) {
		// The topology changed behind our back (mobility churn, a test
		// editing the graph): re-snapshot and re-evaluate everyone.
		//lint:ignore noalloc cold resync path, runs only when the topology version moved
		l.csr = l.cfg.G.Snapshot()
		l.frontier.AddAll()
	}
	if l.fullScan {
		l.frontier.AddAll()
	}
	n := len(l.cfg.States)
	active := l.frontier.Drain(l.activeBuf, n)
	l.activeBuf = active

	states := l.cfg.States
	filtered := l.peerFilter != nil
	switch {
	case l.batch != nil && !filtered:
		l.batch.MoveBatch(active, l.csr, states, l.next, l.movedBuf)
	default:
		pv := l.peerFn
		direct := states
		if filtered {
			l.fv.states = states
			l.fv.filter = l.peerFilter
			pv = l.filteredFn
			direct = nil // mediated reads: protocols must go through Peer
		}
		for _, id := range active {
			if filtered {
				l.fv.viewer = id
			}
			//lint:ignore noalloc generic fallback for protocols without batch kernels; the kernel path above is the allocation-free one
			next, m := l.p.Move(core.View[S]{
				ID:    id,
				Self:  states[id],
				Nbrs:  l.csr.Neighbors(id),
				Peer:  pv,
				Peers: direct,
			})
			l.next[id] = next
			l.movedBuf[id] = m
		}
	}
	// Install phase: commit every evaluated node at once (the loop above
	// read only pre-round states), then build the next round's frontier —
	// movers re-evaluate, and a changed state re-dirties the nodes whose
	// view contains it: the whole closed neighborhood on the generic path,
	// or only the protocol's true read dependents when it provides an
	// installer. Both are sound supersets, so outputs are byte-identical.
	var moved int
	if l.installer != nil {
		moved = l.installer.InstallBatch(active, l.csr, states, l.next, l.movedBuf, l.frontier)
	} else {
		offs, nbrs := l.csr.Rows()
		for _, id := range active {
			nx := l.next[id]
			if l.movedBuf[id] {
				moved++
				l.frontier.Add(id)
			}
			if nx != states[id] {
				states[id] = nx
				l.frontier.Add(id)
				for _, w := range nbrs[offs[id]:offs[id+1]] {
					l.frontier.Add(w)
				}
			}
		}
	}
	if moved > 0 {
		l.rounds++
		l.moves += moved
	}
	return moved
}

// Run implements Instance.
func (l *Lockstep[S]) Run(maxRounds int) Result {
	return l.RunHook(maxRounds, nil)
}

// RunHook is Run with an observation hook invoked after every round that
// had at least one move, receiving the 1-based round index and the
// post-round configuration. The hook must not mutate the configuration.
//
// Legacy uncancellable entry point: the Background context keeps
// Done() nil so the per-round check costs nothing (see runLoop).
//
//selfstab:ctx-root
func (l *Lockstep[S]) RunHook(maxRounds int, hook func(round int, cfg core.Config[S])) Result {
	res, _ := l.runLoop(context.Background(), maxRounds, true, true, hook)
	return res
}

// RunCtx is Run with cooperative cancellation: the context is checked
// once per round, between rounds, so a cancelled or deadline-expired ctx
// stops the loop at the next round boundary — states are always left at
// a consistent round cut, never mid-install. The returned error is nil
// on normal completion and ctx.Err() when the run was cut short; the
// Result then carries the rounds and moves executed so far with Stable
// false. Before RunCtx existed a Run on a non-stabilizing execution
// (e.g. the paper's four-cycle counterexample under the successor
// policy) was unstoppable from the caller short of killing the process.
func (l *Lockstep[S]) RunCtx(ctx context.Context, maxRounds int) (Result, error) {
	return l.runLoop(ctx, maxRounds, true, true, nil)
}

// ConvergeCtx is RunCtx without the full re-dirty at entry: it trusts
// the frontier to already cover every node whose view changed, which
// holds exactly when all mutations since the last run were reported
// through DirtyState/DirtyEdge/DirtyView (the fault adapters and the
// service layer do this). It also skips the final quiescence probe —
// hitting the round limit reports Stable false, and a subsequent call
// resumes where this one stopped, drains an empty frontier, and reports
// Stable true at the cost of one cheap zero-move round. This makes it
// the natural seam for chunked convergence: run a slice of rounds,
// release locks to serve reads, resume. Chunking cannot change the
// trajectory — each round is a deterministic function of the states, so
// any slicing of the same round sequence lands on the same fixed point.
func (l *Lockstep[S]) ConvergeCtx(ctx context.Context, maxRounds int) (Result, error) {
	return l.runLoop(ctx, maxRounds, false, false, nil)
}

// runLoop is the shared round loop. redirty re-enqueues every node at
// entry (the Run contract); probe runs the O(n) quiescence check when
// the round limit is reached. The ctx check is a nil-channel test plus a
// non-blocking select per round — nothing on the hot path, and
// context.Background() keeps the legacy paths literally free (Done()
// returns nil).
func (l *Lockstep[S]) runLoop(ctx context.Context, maxRounds int, redirty, probe bool, hook func(round int, cfg core.Config[S])) (Result, error) {
	// Re-dirty everything at entry: Run is the boundary at which callers
	// legitimately hand back a configuration they edited freely (e.g.
	// stabilize → churn + normalize states → Run again), so no incremental
	// knowledge survives it. Within the run the frontier shrinks as the
	// execution quiesces — which is where the paper's own convergence
	// analysis says nearly all the full-scan work is wasted.
	if redirty {
		if l.sh != nil {
			l.sh.addAll()
		} else {
			l.frontier.AddAll()
		}
	}
	done := ctx.Done()
	start := l.rounds
	for l.rounds-start < maxRounds {
		if done != nil {
			select {
			case <-done:
				return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: false}, ctx.Err()
			default:
			}
		}
		if l.Step() == 0 {
			return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: true}, nil
		}
		if hook != nil {
			hook(l.rounds-start, l.cfg)
		}
	}
	stable := false
	if probe {
		// One more probe: the limit-th round may have reached the fixed
		// point.
		stable = l.quiescent()
	}
	return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: stable}, nil
}

// quiescent reports whether no node is privileged, without mutating state.
func (l *Lockstep[S]) quiescent() bool {
	for v := range l.cfg.States {
		if _, m := l.p.Move(l.cfg.View(graph.NodeID(v))); m {
			return false
		}
	}
	return true
}

// Stable reports whether the current configuration is a fixed point.
func (l *Lockstep[S]) Stable() bool { return l.quiescent() }

var _ Instance = (*Lockstep[bool])(nil)
