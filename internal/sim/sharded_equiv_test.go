package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/protocols"
)

// This file is the sharded-vs-reference metamorphic suite: the sharded
// engine at 1, 2, 4, and 8 shards must produce byte-identical executions
// — per-round move counts, per-round state vectors, Result values, fault
// reports — to the full-scan reference engine on arbitrary graphs,
// arbitrary initial configurations, and arbitrary fault schedules. Any
// divergence means a shard-phase invariant is broken (ownership, halo
// coverage, or barrier placement; see DESIGN.md §7c).

var shardCounts = [4]int{1, 2, 4, 8}

func TestShardedMatchesReferenceSMM(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			sh := NewShardedLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed), k)
			ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
			stepCompare(t, "sharded SMM", sh, ref, g.N()+4)
			sh.Close()
		}
	}
}

func TestShardedMatchesReferenceSMI(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			sh := NewShardedLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed), k)
			ref := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
			stepCompare(t, "sharded SMI", sh, ref, g.N()+4)
			sh.Close()
		}
	}
}

// The opaque wrapper hides the ShardKernel (and every other fast-path
// interface), forcing the sharded engine onto its generic commit+mark
// split with closed-neighborhood marking — which must agree with the
// reference's interleaved generic install.
func TestShardedGenericPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			sh := NewShardedLockstep[core.Pointer](opaque[core.Pointer]{core.NewSMM()}, equivCfg[core.Pointer](core.NewSMM(), g, seed), k)
			ref := NewReferenceLockstep[core.Pointer](opaque[core.Pointer]{core.NewSMM()}, equivCfg[core.Pointer](core.NewSMM(), g, seed))
			stepCompare(t, "sharded generic SMM", sh, ref, g.N()+4)
			sh.Close()
		}
	}
}

// Guard-gated randomness must survive sharding: a node skipped by any
// shard's frontier consumes no coin flips, so the per-node streams stay
// aligned with the reference for every shard count.
func TestShardedMatchesReferenceRandMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(2+rng.Intn(30), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			ps := protocols.NewRandMIS(g.N(), seed)
			pr := protocols.NewRandMIS(g.N(), seed)
			sh := NewShardedLockstep[bool](ps, equivCfg[bool](ps, g, seed), k)
			ref := NewReferenceLockstep[bool](pr, equivCfg[bool](pr, g, seed))
			stepCompare(t, "sharded RandMIS", sh, ref, 6*g.N()+10)
			sh.Close()
		}
	}
}

// Refined(SMM) changes aux state with moved == false, so the sharded
// generic path's change flags (not the moved flags) must drive its
// marking, exactly as in the unsharded engine.
func TestShardedMatchesReferenceRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(2+rng.Intn(25), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			ps := protocols.Refine[core.Pointer](core.NewSMM(), g.N(), seed)
			pr := protocols.Refine[core.Pointer](core.NewSMM(), g.N(), seed)
			sh := NewShardedLockstep(ps, equivCfg[protocols.RefState[core.Pointer]](ps, g, seed), k)
			ref := NewReferenceLockstep(pr, equivCfg[protocols.RefState[core.Pointer]](pr, g, seed))
			stepCompare(t, "sharded Refined(SMM)", sh, ref, 8*g.N()+10)
			sh.Close()
		}
	}
}

// The pooled dispatch path — real worker goroutines, channel barriers —
// must be byte-identical too. shardParallelMin is lowered so even these
// small graphs cross the threshold; under -race this doubles as the
// data-race proof for the four-phase footprint argument.
func TestShardedPooledPathMatchesReference(t *testing.T) {
	old := shardParallelMin
	shardParallelMin = 1
	defer func() { shardParallelMin = old }()

	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(40), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		for _, k := range shardCounts {
			sh := NewShardedLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed), k)
			ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
			stepCompare(t, "pooled sharded SMM", sh, ref, g.N()+4)
			sh.Close()

			shi := NewShardedLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed), k)
			refi := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
			stepCompare(t, "pooled sharded SMI", shi, refi, g.N()+4)
			shi.Close()
		}
	}
}

// Run must return identical Results and fixpoints for every shard count.
func TestShardedRunResultMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(40), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		ref := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
		want := ref.Run(g.N() + 2)
		for _, k := range shardCounts {
			sh := NewShardedLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed), k)
			got := sh.Run(g.N() + 2)
			if got != want {
				t.Fatalf("shards=%d: Result %+v, reference %+v", k, got, want)
			}
			for v := range sh.cfg.States {
				if sh.cfg.States[v] != ref.cfg.States[v] {
					t.Fatalf("shards=%d: node %d diverged at fixpoint", k, v)
				}
			}
			sh.Close()
		}
	}
}

// Replaying a generated fault schedule on the sharded fault adapter and
// on the reference adapter must produce deeply equal monitor reports and
// identical final states at every shard count. This exercises the dirty
// routing to owning shards and the halo rebuild on link flips.
func TestShardedFaultScheduleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(14)
		g := graph.RandomConnected(n, 0.3, rng)
		seed := int64(trial) * 9973
		sched := faults.Generate(seed, g, faults.GenParams{Events: 6, Start: n + 2})

		run := func(mk func(core.Protocol[core.Pointer], core.Config[core.Pointer]) *FaultLockstep[core.Pointer]) (faults.Report, []core.Pointer) {
			p := core.NewSMM()
			cfg := equivCfg[core.Pointer](p, g.Clone(), seed)
			tgt := mk(p, cfg)
			rep := faults.RunSchedule[core.Pointer](p, tgt, sched, faults.SMMChecker, faults.Options{BoundFactor: 1, BoundSlack: 1})
			tgt.Close()
			return rep, append([]core.Pointer(nil), cfg.States...)
		}
		repR, stR := run(NewReferenceFaultLockstep[core.Pointer])
		for _, k := range shardCounts {
			k := k
			repS, stS := run(func(p core.Protocol[core.Pointer], cfg core.Config[core.Pointer]) *FaultLockstep[core.Pointer] {
				return NewShardedFaultLockstep(p, cfg, k)
			})
			if !reflect.DeepEqual(repS, repR) {
				t.Fatalf("trial %d shards=%d: reports diverged:\nsharded:   %+v\nreference: %+v", trial, k, repS, repR)
			}
			if !reflect.DeepEqual(stS, stR) {
				t.Fatalf("trial %d shards=%d: final states diverged:\nsharded:   %v\nreference: %v", trial, k, stS, stR)
			}
		}
	}
}

// Direct topology and state edits between Run calls must be absorbed by
// the version self-detection (which also rebuilds the halo index) and
// the Run-entry re-dirty, exactly as on the unsharded engine.
func TestShardedSurvivesExternalMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(12)
		p := 0.3
		gseed := rng.Int63()
		mk := func() *graph.Graph {
			return graph.RandomConnected(n, p, rand.New(rand.NewSource(gseed)))
		}
		seed := int64(trial)
		churnOn := func(g *graph.Graph, l *Lockstep[core.Pointer]) {
			churn := rand.New(rand.NewSource(seed + 900))
			for j := 0; j < 3; j++ {
				u := graph.NodeID(churn.Intn(g.N()))
				v := graph.NodeID(churn.Intn(g.N()))
				if u == v {
					continue
				}
				if g.HasEdge(u, v) {
					g.RemoveEdge(u, v)
				} else {
					g.AddEdge(u, v)
				}
			}
			core.NormalizeSMM(l.Config())
			corrupt := graph.NodeID(churn.Intn(g.N()))
			l.Config().States[corrupt] = core.PointAt(graph.NodeID((int(corrupt) + 1) % g.N()))
			core.NormalizeSMM(l.Config())
		}

		gr := mk()
		ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), gr, seed))
		r0 := ref.Run(gr.N() + 2)
		churnOn(gr, ref)
		r1 := ref.Run(gr.N() + 2)

		for _, k := range shardCounts {
			gs := mk()
			sh := NewShardedLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), gs, seed), k)
			if got := sh.Run(gs.N() + 2); got != r0 {
				t.Fatalf("trial %d shards=%d: initial runs diverged: %v vs %v", trial, k, got, r0)
			}
			churnOn(gs, sh)
			if got := sh.Run(gs.N() + 2); got != r1 {
				t.Fatalf("trial %d shards=%d: post-churn runs diverged: %v vs %v", trial, k, got, r1)
			}
			for v := range sh.cfg.States {
				if sh.cfg.States[v] != ref.cfg.States[v] {
					t.Fatalf("trial %d shards=%d: node %d diverged after churn", trial, k, v)
				}
			}
			sh.Close()
		}
	}
}

// The SetShards seam must shard frontier-engine executors built after it
// and leave reference engines untouched — that pair is what lets the
// harness and soak twins replay whole campaigns through the sharded
// engine without plumbing a shard count through every constructor.
func TestSetShardsSeam(t *testing.T) {
	g := graph.Path(32)
	SetShards(4)
	defer SetShards(1)
	l := NewLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, 1))
	if l.sh == nil || l.sh.k != 4 {
		t.Fatalf("seam did not shard the frontier engine: %+v", l.sh)
	}
	ref := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, 1))
	if ref.sh != nil {
		t.Fatal("seam sharded the reference engine")
	}
	ft := NewFaultLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, 1))
	if ft.l.sh == nil {
		t.Fatal("seam did not shard the fault adapter")
	}
	// Clamping: more shards than nodes collapses to the node count, and a
	// tiny graph refuses to shard at all rather than run empty ranges.
	tiny := NewShardedLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), graph.Path(3), 1), 8)
	if tiny.sh == nil || tiny.sh.k != 3 {
		t.Fatalf("shard clamp to node count failed: %+v", tiny.sh)
	}
	one := NewShardedLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), graph.Path(1), 1), 8)
	if one.sh != nil {
		t.Fatal("single-node graph should not shard")
	}
}

// Steady-state rounds of a sharded executor must allocate nothing: the
// zero-allocation property the million-node benchmarks depend on, pinned
// here so it cannot regress silently. Both quiet rounds and active
// fault-recovery rounds are measured after the buffers have warmed up.
func TestShardedStepZeroAllocSteadyState(t *testing.T) {
	g := graph.RandomConnected(256, 0.03, rand.New(rand.NewSource(42)))
	p := core.NewSMM()
	cfg := equivCfg[core.Pointer](p, g, 42)
	l := NewShardedLockstep[core.Pointer](p, cfg, 4)
	defer l.Close()
	if res := l.Run(g.N() + 2); !res.Stable {
		t.Fatalf("did not stabilize: %v", res)
	}
	if avg := testing.AllocsPerRun(50, func() { l.Step() }); avg != 0 {
		t.Fatalf("quiet sharded round allocates: %v allocs/op", avg)
	}
	victim := graph.NodeID(17)
	if avg := testing.AllocsPerRun(50, func() {
		cfg.States[victim] = core.Null
		l.DirtyState(victim)
		for l.Step() > 0 {
		}
	}); avg != 0 {
		t.Fatalf("active sharded recovery allocates: %v allocs/op", avg)
	}
}
