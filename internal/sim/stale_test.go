package sim

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/verify"
)

func TestStaleLockstepZeroLagMatchesLockstep(t *testing.T) {
	// With MaxLag = 0 the staleness executor IS the synchronous model:
	// identical trajectories on identical inputs.
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := graph.RandomConnected(15, 0.25, rng)
		p := core.NewSMM()
		cfg1 := core.NewConfig[core.Pointer](g)
		cfg1.Randomize(p, rand.New(rand.NewSource(int64(trial))))
		cfg2 := cfg1.Clone()

		l := NewLockstep[core.Pointer](p, cfg1)
		s := NewStaleLockstep[core.Pointer](p, cfg2, 0, rng)
		for round := 0; round < g.N()+2; round++ {
			m1 := l.Step()
			m2 := s.Step()
			if m1 != m2 {
				t.Fatalf("trial %d round %d: moves %d vs %d", trial, round, m1, m2)
			}
			for v := range cfg1.States {
				if cfg1.States[v] != cfg2.States[v] {
					t.Fatalf("trial %d round %d: node %d diverged", trial, round, v)
				}
			}
			if m1 == 0 {
				break
			}
		}
	}
}

func TestStaleSMMConverges(t *testing.T) {
	for _, lag := range []int{1, 2, 4} {
		for trial := 0; trial < 15; trial++ {
			rng := rand.New(rand.NewSource(int64(100*lag + trial)))
			g := graph.RandomConnected(18, 0.2, rng)
			p := core.NewSMM()
			cfg := core.NewConfig[core.Pointer](g)
			cfg.Randomize(p, rng)
			s := NewStaleLockstep[core.Pointer](p, cfg, lag, rng)
			res := s.Run(300 * (lag + 1))
			if !res.Stable {
				t.Fatalf("lag %d trial %d: %v", lag, trial, res)
			}
			if err := verify.IsMaximalMatching(g, core.MatchingOf(cfg)); err != nil {
				t.Fatalf("lag %d trial %d: %v", lag, trial, err)
			}
		}
	}
}

func TestStaleSMIConverges(t *testing.T) {
	for _, lag := range []int{1, 2, 4} {
		for trial := 0; trial < 15; trial++ {
			rng := rand.New(rand.NewSource(int64(200*lag + trial)))
			g := graph.RandomConnected(18, 0.2, rng)
			p := core.NewSMI()
			cfg := core.NewConfig[bool](g)
			cfg.Randomize(p, rng)
			s := NewStaleLockstep[bool](p, cfg, lag, rng)
			res := s.Run(300 * (lag + 1))
			if !res.Stable {
				t.Fatalf("lag %d trial %d: %v", lag, trial, res)
			}
			if err := verify.IsMaximalIndependentSet(g, core.SetOf(cfg)); err != nil {
				t.Fatalf("lag %d trial %d: %v", lag, trial, err)
			}
		}
	}
}

// Staleness CAN transiently break a matched pair (Lemma 1 does not hold
// under lagged views): node i backs off when it reads a stale j→k. Pin
// this boundary with a deterministic scenario using a fixed lag history.
func TestStaleCanBreakMatchTransiently(t *testing.T) {
	// P3: 0-1-2. History: one round ago 1 pointed at 2; now 0↔1 matched.
	// With lag 1, node 0 may observe the old 1→2 and back off.
	g := graph.Path(3)
	broke := false
	for seed := int64(0); seed < 64 && !broke; seed++ {
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.States[0] = core.PointAt(1)
		cfg.States[1] = core.PointAt(0)
		cfg.States[2] = core.Null
		s := NewStaleLockstep[core.Pointer](p, cfg, 1, rand.New(rand.NewSource(seed)))
		// Forge the history: one round ago node 1 pointed at 2. Node 0
		// draws a stale view with probability 1/2 in the first round.
		s.history[1][1] = core.PointAt(2)
		s.Step()
		if cfg.States[0] == core.Null {
			broke = true
			// It must still re-converge to a maximal matching.
			res := s.Run(200)
			if !res.Stable {
				t.Fatalf("seed %d: %v", seed, res)
			}
			if err := verify.IsMaximalMatching(g, core.MatchingOf(cfg)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !broke {
		t.Fatal("no seed in 64 produced the stale back-off — Lemma 1 seems to hold under staleness, contradicting the construction")
	}
}

func TestStaleQuietWindow(t *testing.T) {
	// A fixed point must be declared stable only after maxLag+1 quiet
	// rounds; verify Run returns Rounds = 0 on an already-stable config.
	g := graph.Path(2)
	cfg := core.NewConfig[core.Pointer](g)
	cfg.States[0] = core.PointAt(1)
	cfg.States[1] = core.PointAt(0)
	rng := rand.New(rand.NewSource(1))
	s := NewStaleLockstep[core.Pointer](core.NewSMM(), cfg, 3, rng)
	res := s.Run(100)
	if !res.Stable || res.Rounds != 0 || s.Moves() != 0 {
		t.Fatalf("res=%v moves=%d", res, s.Moves())
	}
}

func TestStaleNegativeLagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g := graph.Path(2)
	NewStaleLockstep[bool](core.NewSMI(), core.NewConfig[bool](g), -1, nil)
}
