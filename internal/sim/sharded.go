package sim

import (
	"sync"
	"sync/atomic"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// defaultShards, when set above 1, makes every frontier-engine Lockstep
// built by this package (including the fault adapters) run sharded with
// that many shards. It is the sharded analog of referenceScan: the
// metamorphic equivalence tests flip it to replay whole experiment
// tables and soak campaigns through the sharded engine and demand
// byte-identical output. Production code constructs sharded executors
// explicitly via NewShardedLockstep.
var defaultShards atomic.Int32

// SetShards sets the shard count for executors constructed afterwards
// (already-built executors keep their engine); k <= 1 restores the
// unsharded default. Tests must not toggle it while executors are being
// constructed concurrently.
func SetShards(k int) { defaultShards.Store(int32(k)) }

// shardParallelMin is the round-size threshold (drained active nodes,
// estimated from the previous round) below which the sharded executor
// runs its phases inline on the coordinator goroutine instead of
// dispatching to the worker pool. Small or quiescing executions — unit
// tests, the tail of a convergence run — stay free of goroutine and
// channel traffic; the pool is spawned lazily the first time a round
// clears the threshold. It is a variable so the equivalence tests can
// lower it and drive the pooled path under the race detector.
var shardParallelMin = 4096

// shardReq is one unit of pool work: run one phase for one shard.
type shardReq struct {
	phase int
	shard int
}

// Phases of a sharded round, in order. Each runs for every shard with a
// barrier in between, so a phase never observes another shard's partial
// work from the same phase.
const (
	phaseEval   = iota // drain own range, evaluate into next/moved
	phaseCommit        // install own range's results into states
	phaseMark          // derive re-evaluation marks from post-round states
	phaseAbsorb        // pull marks other shards left in our range
)

// shardRT is the sharded engine state hanging off a Lockstep. The
// executor keeps Lockstep's observable behavior — byte-identical
// Results, rounds, moves, states — while splitting every round into the
// four phases above across K contiguous node ranges:
//
//   - Eval reads only the frozen pre-round state vector and writes
//     next/moved at owned indices — disjoint across shards.
//   - Commit writes states at owned indices — disjoint.
//   - Mark reads the fully committed post-round vector and writes only
//     the shard's own frontier (at owned and halo indices).
//   - Absorb moves the marks other shards left inside this shard's
//     range (bounded by the partition's halo spans) into its frontier —
//     writes land in disjoint ranges across shards, so the merge is
//     race-free and, being commutative flag ORs, order-independent.
//
// Byte-identity with the reference engine follows from the same
// argument as the frontier engine's (DESIGN.md §7b): each shard's
// frontier, after absorb, covers every node in its range whose view
// changed, so the union drained next round is a sound superset of the
// privileged set, and evaluating a non-privileged node is a no-op that
// consumes no randomness.
type shardRT[S comparable] struct {
	k    int
	part *graph.Partition
	// fronts[s] is shard s's full-length frontier. Shard s drains only
	// its own range from it; marks it writes outside that range land in
	// its halo and are pulled over by the owners during absorb. Shard
	// frontiers never use the "full" state — fullRound below replaces it
	// so no per-range scan ever has to expand an implicit full set.
	fronts []*graph.Frontier
	bufs   [][]graph.NodeID // per-shard drain buffers, cap = range size
	chg    [][]bool         // generic-path change flags, parallel to bufs[s]; nil with a kernel
	mv     []int            // per-shard move count of the round in flight
	chgAny []bool           // per-shard "some state changed" of the round in flight

	fullRound  bool // next round evaluates everyone (Run entry, topology resync)
	roundFull  bool // the round in flight is a full round
	parallel   bool // the round in flight uses the worker pool
	lastActive int  // drained size of the previous round, the pool heuristic

	// skern, when the protocol provides one, is the barrier-split
	// install fast path; nil falls back to the generic commit+mark with
	// closed-neighborhood marking, exactly as Lockstep's generic install.
	skern core.ShardKernel[S]

	// fvs/filtFns are per-shard filtered peer readers (one filteredViewer
	// per shard so concurrent shards can each re-target their own viewer).
	fvs     []filteredViewer[S]
	filtFns []func(graph.NodeID) S

	workCh  chan shardReq
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// NewShardedLockstep wraps protocol p over configuration cfg with the
// sharded frontier engine at the given shard count. Semantics are those
// of NewLockstep — same Results, same state evolution, byte for byte —
// with rounds executed shard-parallel once they are large enough to pay
// for dispatch. shards <= 1 (after clamping to the node count) yields a
// plain frontier engine. Call Close when done to release the worker
// pool (a pool is only spawned once a round exceeds an internal size
// threshold, so small executions hold no goroutines).
func NewShardedLockstep[S comparable](p core.Protocol[S], cfg core.Config[S], shards int) *Lockstep[S] {
	l := NewLockstep(p, cfg)
	l.sh = nil
	l.attachShards(shards)
	return l
}

// attachShards switches l to the sharded engine with k shards (clamped
// to the node count; k <= 1 after clamping leaves l unsharded).
func (l *Lockstep[S]) attachShards(k int) {
	n := len(l.cfg.States)
	if k > n {
		k = n
	}
	if k <= 1 {
		return
	}
	l.csr = l.cfg.G.Snapshot()
	rt := &shardRT[S]{
		k:         k,
		part:      graph.NewPartition(l.csr, k),
		fronts:    make([]*graph.Frontier, k),
		bufs:      make([][]graph.NodeID, k),
		mv:        make([]int, k),
		chgAny:    make([]bool, k),
		fullRound: true,
	}
	rt.skern, _ = l.p.(core.ShardKernel[S])
	if rt.skern == nil {
		rt.chg = make([][]bool, k)
	}
	for s := 0; s < k; s++ {
		lo, hi := rt.part.Range(s)
		rt.fronts[s] = graph.NewFrontier(n)
		rt.fronts[s].Reset()
		rt.bufs[s] = make([]graph.NodeID, 0, hi-lo)
		if rt.skern == nil {
			rt.chg[s] = make([]bool, hi-lo)
		}
	}
	rt.fvs = make([]filteredViewer[S], k)
	rt.filtFns = make([]func(graph.NodeID) S, k)
	for s := 0; s < k; s++ {
		rt.filtFns[s] = rt.fvs[s].read
	}
	l.sh = rt
}

// Close releases the sharded worker pool, if one was spawned. It is a
// no-op on unsharded executors and safe to call more than once.
func (l *Lockstep[S]) Close() {
	if l.sh != nil {
		l.sh.close()
	}
}

// mark routes an externally attributed dirty mark to the owning shard.
//
//selfstab:noalloc
func (rt *shardRT[S]) mark(v graph.NodeID) {
	rt.fronts[rt.part.Owner(v)].Add(v)
}

// addAll schedules a full round: every node of every shard evaluates.
// Pending per-shard marks are discharged — the full round subsumes them.
//
//selfstab:noalloc
func (rt *shardRT[S]) addAll() {
	for _, f := range rt.fronts {
		f.Reset()
	}
	rt.fullRound = true
}

// stepSharded is Step for the sharded engine: the same round shape as
// Lockstep.Step, with the evaluate and install halves split into
// barrier-separated shard phases.
//
//selfstab:noalloc
func (l *Lockstep[S]) stepSharded() int {
	rt := l.sh
	if !l.csr.Fresh(l.cfg.G) {
		// Unattributed topology change: re-snapshot, rebuild the halo
		// index (ranges depend only on (n, k) and stay put), re-dirty
		// everyone — exactly Lockstep's self-detection response.
		//lint:ignore noalloc cold resync path, runs only when the topology version moved
		l.csr = l.cfg.G.Snapshot()
		//lint:ignore noalloc cold resync path, partition rebuild only on topology change
		rt.part = graph.NewPartition(l.csr, rt.k)
		rt.addAll()
	}
	rt.roundFull = rt.fullRound
	rt.fullRound = false
	est := rt.lastActive
	if rt.roundFull {
		est = len(l.cfg.States)
	}
	rt.parallel = est >= shardParallelMin

	rt.runAll(l, phaseEval)
	active := 0
	for s := 0; s < rt.k; s++ {
		active += len(rt.bufs[s])
	}
	rt.lastActive = active

	rt.runAll(l, phaseCommit)
	moved, anyChg := 0, false
	for s := 0; s < rt.k; s++ {
		moved += rt.mv[s]
		anyChg = anyChg || rt.chgAny[s]
	}
	// Quiet rounds skip the install half entirely: nothing moved and
	// nothing changed, so there are no marks to derive or exchange.
	if moved > 0 || anyChg {
		rt.runAll(l, phaseMark)
		rt.runAll(l, phaseAbsorb)
	}
	if moved > 0 {
		l.rounds++
		l.moves += moved
	}
	return moved
}

// runAll runs one phase for every shard: inline in ascending shard
// order on small rounds, on the worker pool otherwise. Either way the
// phase fully completes for all shards before runAll returns — that
// barrier is what lets the mark phase read post-round states and the
// absorb phase see every shard's finished marks.
//
//selfstab:noalloc
func (rt *shardRT[S]) runAll(l *Lockstep[S], phase int) {
	if !rt.parallel {
		for s := 0; s < rt.k; s++ {
			rt.runPhase(l, phase, s)
		}
		return
	}
	//lint:ignore noalloc one-time lazy pool spawn, amortized over the run
	rt.ensurePool(l)
	rt.wg.Add(rt.k)
	for s := 0; s < rt.k; s++ {
		rt.workCh <- shardReq{phase: phase, shard: s}
	}
	rt.wg.Wait()
}

// ensurePool spawns the K persistent workers on first parallel use.
func (rt *shardRT[S]) ensurePool(l *Lockstep[S]) {
	if rt.started {
		return
	}
	rt.started = true
	rt.workCh = make(chan shardReq)
	for i := 0; i < rt.k; i++ {
		go shardWorker(l)
	}
}

func shardWorker[S comparable](l *Lockstep[S]) {
	rt := l.sh
	for req := range rt.workCh {
		rt.runPhase(l, req.phase, req.shard)
		rt.wg.Done()
	}
}

func (rt *shardRT[S]) close() {
	if rt.started && !rt.closed {
		rt.closed = true
		close(rt.workCh)
	}
}

// runPhase executes one phase for shard s. See shardRT for the per-phase
// read/write footprints that make concurrent execution race-free.
//
//selfstab:noalloc
func (rt *shardRT[S]) runPhase(l *Lockstep[S], phase, s int) {
	switch phase {
	case phaseEval:
		rt.evalShard(l, s)
	case phaseCommit:
		rt.commitShard(l, s)
	case phaseMark:
		rt.markShard(l, s)
	case phaseAbsorb:
		rt.absorbShard(s)
	default:
		panic("sim: unknown shard phase")
	}
}

// evalShard drains shard s's range and evaluates every drained node
// against the frozen pre-round state vector.
//
//selfstab:noalloc
func (rt *shardRT[S]) evalShard(l *Lockstep[S], s int) {
	lo, hi := rt.part.Range(s)
	var ids []graph.NodeID
	if rt.roundFull {
		ids = rt.bufs[s][:0]
		for v := lo; v < hi; v++ {
			//lint:ignore noalloc bufs[s] is pre-sized to the range, so append never grows
			ids = append(ids, v)
		}
		// Discharge stray marks routed in since the full round was
		// scheduled — the full evaluation subsumes them.
		rt.fronts[s].Reset()
	} else {
		ids = rt.fronts[s].DrainRange(rt.bufs[s], int(lo), int(hi))
	}
	rt.bufs[s] = ids

	states := l.cfg.States
	filtered := l.peerFilter != nil
	if l.batch != nil && !filtered {
		l.batch.MoveBatch(ids, l.csr, states, l.next, l.movedBuf)
		return
	}
	pv := l.peerFn
	direct := states
	fv := &rt.fvs[s]
	if filtered {
		fv.states = states
		fv.filter = l.peerFilter
		pv = rt.filtFns[s]
		direct = nil // mediated reads: protocols must go through Peer
	}
	for _, id := range ids {
		if filtered {
			fv.viewer = id
		}
		//lint:ignore noalloc generic fallback for protocols without batch kernels; the kernel path above is the allocation-free one
		next, m := l.p.Move(core.View[S]{
			ID:    id,
			Self:  states[id],
			Nbrs:  l.csr.Neighbors(id),
			Peer:  pv,
			Peers: direct,
		})
		l.next[id] = next
		l.movedBuf[id] = m
	}
}

// commitShard installs shard s's results into the shared state vector —
// writes land only at owned indices.
//
//selfstab:noalloc
func (rt *shardRT[S]) commitShard(l *Lockstep[S], s int) {
	ids := rt.bufs[s]
	states := l.cfg.States
	if rt.skern != nil {
		rt.mv[s] = rt.skern.CommitBatch(ids, states, l.next, l.movedBuf)
		rt.chgAny[s] = rt.mv[s] > 0
		return
	}
	chg := rt.chg[s]
	mv, any := 0, false
	for i, id := range ids {
		nx := l.next[id]
		c := nx != states[id]
		chg[i] = c
		if c {
			states[id] = nx
			any = true
		}
		if l.movedBuf[id] {
			mv++
		}
	}
	rt.mv[s], rt.chgAny[s] = mv, any
}

// markShard derives shard s's re-evaluation marks from the fully
// committed post-round states, writing only its own frontier. The
// generic path mirrors Lockstep's generic install marking exactly: it
// reads no neighbor states, only structure, so the commit/mark split
// cannot change which nodes it marks.
//
//selfstab:noalloc
func (rt *shardRT[S]) markShard(l *Lockstep[S], s int) {
	ids := rt.bufs[s]
	f := rt.fronts[s]
	if rt.skern != nil {
		rt.skern.MarkBatch(ids, l.csr, l.cfg.States, l.movedBuf, f)
		return
	}
	offs, nbrs := l.csr.Rows()
	chg := rt.chg[s]
	for i, id := range ids {
		if l.movedBuf[id] {
			f.Add(id)
		}
		if chg[i] {
			f.Add(id)
			for _, w := range nbrs[offs[id]:offs[id+1]] {
				f.Add(w)
			}
		}
	}
}

// absorbShard pulls the marks every other shard left inside shard s's
// range into s's frontier, visiting sources in ascending shard order.
// Marks are commutative ORs, so the merge order cannot affect the
// drained set — the ascending order is just a fixed convention.
//
//selfstab:noalloc
func (rt *shardRT[S]) absorbShard(s int) {
	mine := rt.fronts[s]
	for t := 0; t < rt.k; t++ {
		if t == s {
			continue
		}
		alo, ahi := rt.part.AbsorbSpan(t, s)
		if alo < ahi {
			mine.Absorb(rt.fronts[t], int(alo), int(ahi))
		}
	}
}
