package sim

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// StaleLockstep executes a protocol under bounded-staleness views: in
// round t node i observes neighbor j's state from round t - lag, where
// lag is drawn uniformly from [0, MaxLag] per (i, j, t). MaxLag = 0 is
// exactly the synchronous model.
//
// The paper's beacon model never acts on stale data — a node moves only
// after hearing a fresh beacon from every neighbor — so this executor
// probes territory the paper does NOT claim: what if beacons carried
// cached state, or nodes acted on timeout with old tables? Experiment
// E12 measures which of the protocols survive it.
// StaleLockstep deliberately stays a full scan: the shared generator is
// consumed lazily inside every Peer read, so skipping a provably
// inactive node would still shift the random-lag stream of every later
// read and change the execution. Frontier scheduling is sound only for
// executors whose skipped evaluations consume no randomness.
type StaleLockstep[S comparable] struct {
	p       core.Protocol[S]
	cfg     core.Config[S]
	maxLag  int
	rng     *rand.Rand
	history [][]S // history[k] = states k rounds ago, k in [0, maxLag]
	next    []S
	csr     *graph.CSR
	peerFn  func(graph.NodeID) S // hoisted: one closure per executor, not per node per round
	rounds  int
	moves   int
}

// NewStaleLockstep wraps protocol p over cfg with the given staleness
// bound. The history is seeded with the initial configuration (as if the
// system had been holding it forever).
func NewStaleLockstep[S comparable](p core.Protocol[S], cfg core.Config[S], maxLag int, rng *rand.Rand) *StaleLockstep[S] {
	if maxLag < 0 {
		panic(fmt.Sprintf("sim: NewStaleLockstep: negative lag %d", maxLag))
	}
	s := &StaleLockstep[S]{
		p:       p,
		cfg:     cfg,
		maxLag:  maxLag,
		rng:     rng,
		history: make([][]S, maxLag+1),
		next:    make([]S, len(cfg.States)),
	}
	for k := range s.history {
		s.history[k] = append([]S(nil), cfg.States...)
	}
	s.peerFn = func(j graph.NodeID) S {
		lag := 0
		if s.maxLag > 0 {
			lag = s.rng.Intn(s.maxLag + 1)
		}
		return s.history[lag][j]
	}
	return s
}

// Config exposes the current configuration.
func (s *StaleLockstep[S]) Config() core.Config[S] { return s.cfg }

// Rounds returns the number of active rounds executed.
func (s *StaleLockstep[S]) Rounds() int { return s.rounds }

// Moves returns the total active node evaluations.
func (s *StaleLockstep[S]) Moves() int { return s.moves }

// Step executes one round with randomly stale views and returns the
// number of active nodes.
func (s *StaleLockstep[S]) Step() int {
	if !s.csr.Fresh(s.cfg.G) {
		s.csr = s.cfg.G.Snapshot()
	}
	moved := 0
	for v := range s.cfg.States {
		id := graph.NodeID(v)
		view := core.View[S]{
			ID:   id,
			Self: s.cfg.States[v], // own state is always current
			Nbrs: s.csr.Neighbors(id),
			Peer: s.peerFn,
		}
		n, m := s.p.Move(view)
		s.next[v] = n
		if m {
			moved++
		}
	}
	// Shift history: the current states become "1 round ago".
	last := s.history[len(s.history)-1]
	copy(s.history[1:], s.history[:len(s.history)-1])
	copy(last, s.cfg.States)
	s.history[0] = last
	// history[0] aliases the slot we just filled with the pre-round
	// states; install the new states into the live configuration and
	// refresh history[0] to match (views at lag 0 must see round t).
	copy(s.cfg.States, s.next)
	copy(s.history[0], s.cfg.States)
	if moved > 0 {
		s.rounds++
		s.moves += moved
	}
	return moved
}

// Run drives Step until maxLag+1 consecutive quiet rounds (with lagged
// views, a single quiet round does not imply a fixed point: older state
// may still be observed later) or until maxRounds active rounds.
func (s *StaleLockstep[S]) Run(maxRounds int) Result {
	start := s.rounds
	quiet := 0
	for s.rounds-start < maxRounds {
		if s.Step() == 0 {
			quiet++
			if quiet > s.maxLag {
				return Result{Rounds: s.rounds - start, Moves: s.moves, Stable: true}
			}
		} else {
			quiet = 0
		}
	}
	return Result{Rounds: s.rounds - start, Moves: s.moves, Stable: false}
}
