package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/protocols"
)

// This file is the metamorphic equivalence suite for the active-frontier
// scheduler: the frontier engine and the full-scan reference engine must
// produce byte-identical executions — per-round move counts, per-round
// state vectors, Result values — on arbitrary graphs, arbitrary initial
// configurations, and arbitrary fault schedules. Any divergence means a
// dirty-set rule is missing (see DESIGN.md, "Active-frontier
// scheduling").

// stepCompare drives a frontier engine and a reference engine in
// lockstep for rounds rounds, failing on the first divergence in move
// counts or state vectors. It keeps stepping after quiescence to check
// that an empty frontier and a quiet full scan agree too.
func stepCompare[S comparable](t *testing.T, tag string, fr, ref *Lockstep[S], rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		mf, mr := fr.Step(), ref.Step()
		if mf != mr {
			t.Fatalf("%s: round %d: frontier moved %d, reference %d", tag, r, mf, mr)
		}
		for v := range fr.cfg.States {
			if fr.cfg.States[v] != ref.cfg.States[v] {
				t.Fatalf("%s: round %d: node %d: frontier %v, reference %v",
					tag, r, v, fr.cfg.States[v], ref.cfg.States[v])
			}
		}
	}
	if fr.Rounds() != ref.Rounds() || fr.Moves() != ref.Moves() {
		t.Fatalf("%s: counters diverged: frontier (%d rounds, %d moves), reference (%d, %d)",
			tag, fr.Rounds(), fr.Moves(), ref.Rounds(), ref.Moves())
	}
}

func equivCfg[S comparable](p core.Protocol[S], g *graph.Graph, stateSeed int64) core.Config[S] {
	cfg := core.NewConfig[S](g)
	cfg.Randomize(p, rand.New(rand.NewSource(stateSeed)))
	return cfg
}

func TestFrontierMatchesReferenceSMM(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)
		fr := NewLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
		ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
		stepCompare(t, "SMM", fr, ref, g.N()+4)
	}
}

func TestFrontierMatchesReferenceSMI(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)
		fr := NewLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
		ref := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
		stepCompare(t, "SMI", fr, ref, g.N()+4)
	}
}

// opaque hides every optional fast-path interface of a protocol (batch
// evaluator, batch installer) and strips the direct-read state vector
// from each view, forcing executors onto the per-node closure path with
// the generic install loop — the third evaluation path, which the batch
// kernels must match move for move and state for state.
type opaque[S comparable] struct{ p core.Protocol[S] }

func (o opaque[S]) Name() string { return o.p.Name() }
func (o opaque[S]) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) S {
	return o.p.Random(id, nbrs, rng)
}
func (o opaque[S]) Move(v core.View[S]) (S, bool) {
	v.Peers = nil
	return o.p.Move(v)
}

// The batch kernels (MoveBatch + InstallBatch), the direct-read Move path,
// and the closure-read Move path are three implementations of the same
// rules; this pins all three to each other on both engines.
func TestBatchKernelsMatchClosurePath(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(2+rng.Intn(40), 0.05+rng.Float64()*0.4, rng)
		seed := int64(trial)

		batch := NewLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
		closure := NewLockstep[core.Pointer](opaque[core.Pointer]{core.NewSMM()}, equivCfg[core.Pointer](core.NewSMM(), g, seed))
		stepCompare(t, "SMM batch vs closure", batch, closure, g.N()+4)

		refClosure := NewReferenceLockstep[core.Pointer](opaque[core.Pointer]{core.NewSMM()}, equivCfg[core.Pointer](core.NewSMM(), g, seed))
		batch2 := NewLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
		stepCompare(t, "SMM batch vs full-scan closure", batch2, refClosure, g.N()+4)

		bi := NewLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
		ci := NewReferenceLockstep[bool](opaque[bool]{core.NewSMI()}, equivCfg[bool](core.NewSMI(), g, seed))
		stepCompare(t, "SMI batch vs full-scan closure", bi, ci, g.N()+4)
	}
}

// RandMIS draws from per-node generators only while a rule guard holds,
// so a skipped (provably inactive) evaluation consumes no randomness —
// the two engines must replay identical coin-flip streams.
func TestFrontierMatchesReferenceRandMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(2+rng.Intn(30), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		pf := protocols.NewRandMIS(g.N(), seed)
		pr := protocols.NewRandMIS(g.N(), seed)
		fr := NewLockstep[bool](pf, equivCfg[bool](pf, g, seed))
		ref := NewReferenceLockstep[bool](pr, equivCfg[bool](pr, g, seed))
		stepCompare(t, "RandMIS", fr, ref, 6*g.N()+10)
	}
}

// Refined(SMM) exercises the aux-change-while-inactive case: the wrapper
// clears Want with moved == false, so the dirty rules must key on state
// changes, not on the active flag alone. It also draws Prio only for
// privileged nodes, so the per-node streams must stay aligned.
func TestFrontierMatchesReferenceRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(2+rng.Intn(25), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		pf := protocols.Refine[core.Pointer](core.NewSMM(), g.N(), seed)
		pr := protocols.Refine[core.Pointer](core.NewSMM(), g.N(), seed)
		fr := NewLockstep(pf, equivCfg[protocols.RefState[core.Pointer]](pf, g, seed))
		ref := NewReferenceLockstep(pr, equivCfg[protocols.RefState[core.Pointer]](pr, g, seed))
		stepCompare(t, "Refined(SMM)", fr, ref, 8*g.N()+10)
	}
}

// The data-parallel executor must agree with the reference for every
// worker count, both per round and in the final Result.
func TestParallelFrontierMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(40), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		for workers := 1; workers <= 4; workers++ {
			par := NewParallel[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed), workers)
			ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g, seed))
			for r := 0; r < g.N()+3; r++ {
				mp, mr := par.Step(), ref.Step()
				if mp != mr {
					t.Fatalf("workers=%d round %d: parallel moved %d, reference %d", workers, r, mp, mr)
				}
				for v := range par.cfg.States {
					if par.cfg.States[v] != ref.cfg.States[v] {
						t.Fatalf("workers=%d round %d: node %d diverged", workers, r, v)
					}
				}
			}
			if par.Rounds() != ref.Rounds() || par.Moves() != ref.Moves() {
				t.Fatalf("workers=%d: counters diverged", workers)
			}
		}
	}
}

// Parallel.Run and Lockstep.Run must return identical Results from
// identical inputs for any worker count.
func TestParallelFrontierRunResultMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(40), 0.1+rng.Float64()*0.3, rng)
		seed := int64(trial)
		ref := NewReferenceLockstep[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed))
		want := ref.Run(g.N() + 2)
		for workers := 1; workers <= 4; workers++ {
			par := NewParallel[bool](core.NewSMI(), equivCfg[bool](core.NewSMI(), g, seed), workers)
			got := par.Run(g.N() + 2)
			if got != want {
				t.Fatalf("workers=%d: Result %+v, reference %+v", workers, got, want)
			}
			for v := range par.cfg.States {
				if par.cfg.States[v] != ref.cfg.States[v] {
					t.Fatalf("workers=%d: node %d diverged at fixpoint", workers, v)
				}
			}
		}
	}
}

// Replaying a generated fault schedule on the frontier fault adapter and
// on the reference adapter must produce deeply equal monitor reports —
// the soak harness's observable output — and identical final states.
// This exercises every dirty rule at once: state corruption, link flips
// with repair, beacon-loss pins, view freezes, and pin expiry.
func TestFrontierFaultScheduleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(14)
		g := graph.RandomConnected(n, 0.3, rng)
		seed := int64(trial) * 7717
		sched := faults.Generate(seed, g, faults.GenParams{Events: 6, Start: n + 2})

		run := func(mk func(core.Protocol[core.Pointer], core.Config[core.Pointer]) *FaultLockstep[core.Pointer]) (faults.Report, []core.Pointer) {
			p := core.NewSMM()
			cfg := equivCfg[core.Pointer](p, g.Clone(), seed)
			tgt := mk(p, cfg)
			rep := faults.RunSchedule[core.Pointer](p, tgt, sched, faults.SMMChecker, faults.Options{BoundFactor: 1, BoundSlack: 1})
			return rep, append([]core.Pointer(nil), cfg.States...)
		}
		repF, stF := run(NewFaultLockstep[core.Pointer])
		repR, stR := run(NewReferenceFaultLockstep[core.Pointer])
		if !reflect.DeepEqual(repF, repR) {
			t.Fatalf("trial %d: reports diverged:\nfrontier:  %+v\nreference: %+v", trial, repF, repR)
		}
		if !reflect.DeepEqual(stF, stR) {
			t.Fatalf("trial %d: final states diverged:\nfrontier:  %v\nreference: %v", trial, stF, stR)
		}
	}
}

// Callers may mutate the topology and the states directly between Run
// calls on the same executor (the harness's churn-and-restabilize
// pattern). The version check and the Run-entry re-dirty must absorb
// both kinds of edit.
func TestFrontierSurvivesExternalMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.RandomConnected(12+rng.Intn(12), 0.3, rng)
		g2 := g1.Clone()
		seed := int64(trial)
		fr := NewLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g1, seed))
		ref := NewReferenceLockstep[core.Pointer](core.NewSMM(), equivCfg[core.Pointer](core.NewSMM(), g2, seed))
		if r1, r2 := fr.Run(g1.N()+2), ref.Run(g2.N()+2); r1 != r2 {
			t.Fatalf("trial %d: initial runs diverged: %v vs %v", trial, r1, r2)
		}
		// External churn: flip a few edges and corrupt a state on both
		// copies identically, then re-run.
		churn := rand.New(rand.NewSource(seed + 500))
		for k := 0; k < 3; k++ {
			u := graph.NodeID(churn.Intn(g1.N()))
			v := graph.NodeID(churn.Intn(g1.N()))
			if u == v {
				continue
			}
			if g1.HasEdge(u, v) {
				g1.RemoveEdge(u, v)
				g2.RemoveEdge(u, v)
			} else {
				g1.AddEdge(u, v)
				g2.AddEdge(u, v)
			}
		}
		core.NormalizeSMM(fr.Config())
		core.NormalizeSMM(ref.Config())
		corrupt := graph.NodeID(churn.Intn(g1.N()))
		fr.Config().States[corrupt] = core.PointAt(graph.NodeID((int(corrupt) + 1) % g1.N()))
		ref.Config().States[corrupt] = core.PointAt(graph.NodeID((int(corrupt) + 1) % g2.N()))
		core.NormalizeSMM(fr.Config())
		core.NormalizeSMM(ref.Config())
		if r1, r2 := fr.Run(g1.N()+2), ref.Run(g2.N()+2); r1 != r2 {
			t.Fatalf("trial %d: post-churn runs diverged: %v vs %v", trial, r1, r2)
		}
		for v := range fr.cfg.States {
			if fr.cfg.States[v] != ref.cfg.States[v] {
				t.Fatalf("trial %d: node %d diverged after churn", trial, v)
			}
		}
	}
}
