package sim

import "sync/atomic"

// referenceScan, when set, makes every executor built by this package
// use the full-scan reference engine instead of the active frontier. It
// exists for the metamorphic equivalence tests, which render identical
// workloads (experiment tables, soak reports) under both engines and
// require byte-identical output; production code never sets it.
var referenceScan atomic.Bool

// SetReferenceScan toggles reference mode for executors constructed
// afterwards (already-built executors keep their engine). Tests must
// not toggle it while executors are being constructed concurrently.
func SetReferenceScan(on bool) { referenceScan.Store(on) }
