package sim

import (
	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
)

// FaultLockstep adapts Lockstep to faults.Target, making the reference
// executor injectable: state writes and link flips act on the live
// configuration immediately (the lockstep model has no discovery lag),
// while beacon-loss bursts and neighbor-table staleness are served
// through a stale-view overlay consulted by every Peer read.
type FaultLockstep[S comparable] struct {
	l  *Lockstep[S]
	ov *faults.Overlay[S]
}

// NewFaultLockstep wraps protocol p over configuration cfg (used in
// place, as in NewLockstep) with fault hooks installed.
func NewFaultLockstep[S comparable](p core.Protocol[S], cfg core.Config[S]) *FaultLockstep[S] {
	l := NewLockstep(p, cfg)
	ov := faults.NewOverlay[S]()
	l.peerFilter = ov.Peer
	return &FaultLockstep[S]{l: l, ov: ov}
}

// NewReferenceFaultLockstep is NewFaultLockstep over the full-scan
// reference engine: identical fault semantics, no frontier scheduling.
// The metamorphic fault tests replay the same schedule on both and
// require byte-identical reports.
func NewReferenceFaultLockstep[S comparable](p core.Protocol[S], cfg core.Config[S]) *FaultLockstep[S] {
	f := NewFaultLockstep(p, cfg)
	f.l.fullScan = true
	return f
}

// NewShardedFaultLockstep is NewFaultLockstep over the sharded frontier
// engine: identical fault semantics, with fault-footprint dirty marks
// routed to the owning shards' frontiers. The sharded metamorphic fault
// tests replay the same schedule on this and on the reference engine at
// 1–8 shards and require byte-identical reports.
func NewShardedFaultLockstep[S comparable](p core.Protocol[S], cfg core.Config[S], shards int) *FaultLockstep[S] {
	f := NewFaultLockstep(p, cfg)
	f.l.sh = nil
	f.l.attachShards(shards)
	return f
}

// Lockstep returns the wrapped executor.
func (f *FaultLockstep[S]) Lockstep() *Lockstep[S] { return f.l }

// Model implements faults.Target.
func (f *FaultLockstep[S]) Model() string { return "lockstep" }

// Topology implements faults.Target.
func (f *FaultLockstep[S]) Topology() *graph.Graph { return f.l.cfg.G }

// Config implements faults.Target: the live configuration.
func (f *FaultLockstep[S]) Config() core.Config[S] { return f.l.cfg }

// ReadState implements faults.Target.
func (f *FaultLockstep[S]) ReadState(v graph.NodeID) S { return f.l.cfg.States[v] }

// WriteState implements faults.Target. The overwrite changes v's own
// view and the view of every neighbor, so that closed neighborhood is
// re-dirtied.
func (f *FaultLockstep[S]) WriteState(v graph.NodeID, s S) {
	f.l.cfg.States[v] = s
	f.l.DirtyState(v)
}

// SetLink implements faults.Target. Removing a link clears any stale
// pins on it and runs the dangling-reference repair at both endpoints,
// mirroring the link layer reporting the loss. Either direction of the
// flip re-dirties the closed neighborhoods of both endpoints (DirtyEdge
// also re-syncs the executor's adjacency snapshot, so the fault's
// footprint stays exact instead of falling back to a full re-dirty).
func (f *FaultLockstep[S]) SetLink(e graph.Edge, present bool) {
	if present {
		if f.l.cfg.G.AddEdge(e.U, e.V) {
			f.l.DirtyEdge(e.U, e.V)
		}
		return
	}
	if f.l.cfg.G.RemoveEdge(e.U, e.V) {
		f.ov.Unpin(e.U, e.V)
		for _, v := range [2]graph.NodeID{e.U, e.V} {
			other := e.U ^ e.V ^ v
			f.l.cfg.States[v] = core.RepairState(f.l.p, v, f.l.cfg.States[v], other)
		}
		f.l.DirtyEdge(e.U, e.V)
	}
}

// DropLink implements faults.Target: both endpoints keep reading the
// state the other has right now for the given number of rounds. Only
// the two viewers' own reads change, so only they are re-dirtied.
func (f *FaultLockstep[S]) DropLink(e graph.Edge, rounds int) {
	st := f.l.cfg.States
	f.ov.PinLink(e.U, e.V, st[e.U], st[e.V], rounds)
	f.l.DirtyView(e.U)
	f.l.DirtyView(e.V)
}

// Freeze implements faults.Target: node v's entire neighbor view is
// pinned to the current states for the given number of rounds. Only v's
// reads change.
func (f *FaultLockstep[S]) Freeze(v graph.NodeID, rounds int) {
	st := f.l.cfg.States
	f.ov.PinView(v, f.l.cfg.G.Neighbors(v), func(j graph.NodeID) S { return st[j] }, rounds)
	f.l.DirtyView(v)
}

// Step implements faults.Target: one lockstep round, then one overlay
// tick so pins age in round units. A pin expiring flips the viewer's
// read back to fresh without any state changing, so every such viewer
// is re-dirtied.
func (f *FaultLockstep[S]) Step() int {
	moved := f.l.Step()
	for _, v := range f.ov.Tick() {
		f.l.DirtyView(v)
	}
	return moved
}

// Warmup implements faults.Target: lockstep needs none.
func (f *FaultLockstep[S]) Warmup() int { return 0 }

// DetectionLag implements faults.Target: topology changes are visible
// in the very next round.
func (f *FaultLockstep[S]) DetectionLag() int { return 0 }

// QuietRounds implements faults.Target: one zero-move round is a fixed
// point in the deterministic lockstep model.
func (f *FaultLockstep[S]) QuietRounds() int { return 1 }

// Close implements faults.Target: releases the sharded engine's worker
// pool, if any (the unsharded engines hold no resources).
func (f *FaultLockstep[S]) Close() { f.l.Close() }

var _ faults.Target[bool] = (*FaultLockstep[bool])(nil)
