package sim

import (
	"runtime"
	"sync"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Parallel is a data-parallel lockstep executor: each synchronous round
// partitions the node set across a fixed worker pool, with every worker
// evaluating its block of nodes against the shared immutable pre-round
// state vector. The semantics are identical to Lockstep — the round
// barrier is a WaitGroup instead of a loop boundary — but large networks
// amortize rule evaluation across cores. Protocols must be safe for
// concurrent Move calls on distinct nodes (all protocols in this module
// are: the deterministic ones are pure, the randomized ones use per-node
// generators).
type Parallel[S comparable] struct {
	p       core.Protocol[S]
	cfg     core.Config[S]
	workers int
	next    []S
	active  []bool
	rounds  int
	moves   int
}

// NewParallel wraps protocol p over cfg with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewParallel[S comparable](p core.Protocol[S], cfg core.Config[S], workers int) *Parallel[S] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel[S]{
		p:       p,
		cfg:     cfg,
		workers: workers,
		next:    make([]S, len(cfg.States)),
		active:  make([]bool, len(cfg.States)),
	}
}

// Name implements Instance.
func (l *Parallel[S]) Name() string { return l.p.Name() }

// Config exposes the current configuration.
func (l *Parallel[S]) Config() core.Config[S] { return l.cfg }

// Rounds implements Instance.
func (l *Parallel[S]) Rounds() int { return l.rounds }

// Moves implements Instance.
func (l *Parallel[S]) Moves() int { return l.moves }

// Step implements Instance: one parallel synchronous round.
func (l *Parallel[S]) Step() int {
	n := len(l.cfg.States)
	states := l.cfg.States
	var wg sync.WaitGroup
	block := (n + l.workers - 1) / l.workers
	for w := 0; w < l.workers; w++ {
		lo := w * block
		if lo >= n {
			break
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			peer := func(j graph.NodeID) S { return states[j] }
			for v := lo; v < hi; v++ {
				id := graph.NodeID(v)
				next, m := l.p.Move(core.View[S]{
					ID:   id,
					Self: states[v],
					Nbrs: l.cfg.G.Neighbors(id),
					Peer: peer,
				})
				l.next[v] = next
				l.active[v] = m
			}
		}(lo, hi)
	}
	wg.Wait()
	moved := 0
	for v := 0; v < n; v++ {
		if l.active[v] {
			moved++
		}
	}
	copy(l.cfg.States, l.next)
	if moved > 0 {
		l.rounds++
		l.moves += moved
	}
	return moved
}

// Run implements Instance.
func (l *Parallel[S]) Run(maxRounds int) Result {
	start := l.rounds
	for l.rounds-start < maxRounds {
		if l.Step() == 0 {
			return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: true}
		}
	}
	stable := true
	for v := range l.cfg.States {
		if _, m := l.p.Move(l.cfg.View(graph.NodeID(v))); m {
			stable = false
			break
		}
	}
	return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: stable}
}

var _ Instance = (*Parallel[bool])(nil)
