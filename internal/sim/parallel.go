package sim

import (
	"context"
	"runtime"
	"sync"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Parallel is a data-parallel lockstep executor: each synchronous round
// partitions the active frontier across a fixed worker pool, with every
// worker evaluating its block of nodes against the shared immutable
// pre-round state vector. The semantics are identical to Lockstep — the
// round barrier is a WaitGroup instead of a loop boundary, and the
// frontier is drained in the same ascending ID order — but large
// networks amortize rule evaluation across cores. Protocols must be
// safe for concurrent Move calls on distinct nodes (all protocols in
// this module are: the deterministic ones are pure, the randomized ones
// use per-node generators).
type Parallel[S comparable] struct {
	p       core.Protocol[S]
	cfg     core.Config[S]
	workers int
	next    []S
	active  []bool

	csr       *graph.CSR
	frontier  *graph.Frontier
	activeBuf []graph.NodeID
	fullScan  bool
	batch     core.BatchEvaluator[S]
	installer core.BatchInstaller[S]

	rounds int
	moves  int
}

// NewParallel wraps protocol p over cfg with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewParallel[S comparable](p core.Protocol[S], cfg core.Config[S], workers int) *Parallel[S] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	l := &Parallel[S]{
		p:         p,
		cfg:       cfg,
		workers:   workers,
		next:      make([]S, len(cfg.States)),
		active:    make([]bool, len(cfg.States)),
		frontier:  graph.NewFrontier(len(cfg.States)),
		activeBuf: make([]graph.NodeID, 0, len(cfg.States)),
		fullScan:  referenceScan.Load(),
	}
	l.batch, _ = p.(core.BatchEvaluator[S])
	l.installer, _ = p.(core.BatchInstaller[S])
	return l
}

// Name implements Instance.
func (l *Parallel[S]) Name() string { return l.p.Name() }

// Config exposes the current configuration.
func (l *Parallel[S]) Config() core.Config[S] { return l.cfg }

// Rounds implements Instance.
func (l *Parallel[S]) Rounds() int { return l.rounds }

// Moves implements Instance.
func (l *Parallel[S]) Moves() int { return l.moves }

// Step implements Instance: one parallel synchronous round over the
// active frontier. Only frontier nodes are evaluated (non-frontier
// nodes are provably no-ops; see Lockstep), and only evaluated nodes
// are installed, so results match Lockstep byte for byte.
func (l *Parallel[S]) Step() int {
	if !l.csr.Fresh(l.cfg.G) {
		l.csr = l.cfg.G.Snapshot()
		l.frontier.AddAll()
	}
	if l.fullScan {
		l.frontier.AddAll()
	}
	n := len(l.cfg.States)
	ids := l.frontier.Drain(l.activeBuf, n)
	l.activeBuf = ids

	states := l.cfg.States
	peer := func(j graph.NodeID) S { return states[j] }
	var wg sync.WaitGroup
	block := (len(ids) + l.workers - 1) / l.workers
	for w := 0; w < l.workers; w++ {
		lo := w * block
		if lo >= len(ids) {
			break
		}
		hi := lo + block
		if hi > len(ids) {
			hi = len(ids)
		}
		wg.Add(1)
		go func(part []graph.NodeID) {
			defer wg.Done()
			if l.batch != nil {
				l.batch.MoveBatch(part, l.csr, states, l.next, l.active)
				return
			}
			for _, id := range part {
				next, m := l.p.Move(core.View[S]{
					ID:    id,
					Self:  states[id],
					Nbrs:  l.csr.Neighbors(id),
					Peer:  peer,
					Peers: states,
				})
				l.next[id] = next
				l.active[id] = m
			}
		}(ids[lo:hi])
	}
	wg.Wait()
	// Sequential install over the same ascending order: commit changed
	// states and build the next frontier exactly as Lockstep does.
	var moved int
	if l.installer != nil {
		moved = l.installer.InstallBatch(ids, l.csr, states, l.next, l.active, l.frontier)
	} else {
		offs, nbrs := l.csr.Rows()
		for _, id := range ids {
			if l.active[id] {
				moved++
				l.frontier.Add(id)
			}
			if nx := l.next[id]; nx != states[id] {
				states[id] = nx
				l.frontier.Add(id)
				for _, w := range nbrs[offs[id]:offs[id+1]] {
					l.frontier.Add(w)
				}
			}
		}
	}
	if moved > 0 {
		l.rounds++
		l.moves += moved
	}
	return moved
}

// Run implements Instance. Legacy uncancellable entry point (see
// Lockstep.RunHook).
//
//selfstab:ctx-root
func (l *Parallel[S]) Run(maxRounds int) Result {
	res, _ := l.RunCtx(context.Background(), maxRounds)
	return res
}

// RunCtx is Run with cooperative cancellation, checked once per round
// between the install barrier and the next evaluation fan-out (see
// Lockstep.RunCtx). Workers never observe the cancellation mid-round:
// the round they are in completes, so states stay at a round boundary.
func (l *Parallel[S]) RunCtx(ctx context.Context, maxRounds int) (Result, error) {
	// Re-dirty everything at entry — Run is the boundary at which callers
	// may have edited the configuration directly (see Lockstep.RunHook).
	l.frontier.AddAll()
	done := ctx.Done()
	start := l.rounds
	for l.rounds-start < maxRounds {
		if done != nil {
			select {
			case <-done:
				return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: false}, ctx.Err()
			default:
			}
		}
		if l.Step() == 0 {
			return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: true}, nil
		}
	}
	stable := true
	for v := range l.cfg.States {
		if _, m := l.p.Move(l.cfg.View(graph.NodeID(v))); m {
			stable = false
			break
		}
	}
	return Result{Rounds: l.rounds - start, Moves: l.moves, Stable: stable}, nil
}

var _ Instance = (*Parallel[bool])(nil)
