package sim

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// disjointUnion embeds g1 on IDs 0..n1-1 and g2 on IDs n1..n1+n2-1.
// Shifting preserves the relative ID order inside each component, and
// SMM/SMI consult IDs only within neighborhoods, so the dynamics of each
// component must be exactly the separate dynamics.
func disjointUnion(g1, g2 *graph.Graph) *graph.Graph {
	u := graph.New(g1.N() + g2.N())
	for _, e := range g1.Edges() {
		u.AddEdge(e.U, e.V)
	}
	off := graph.NodeID(g1.N())
	for _, e := range g2.Edges() {
		u.AddEdge(e.U+off, e.V+off)
	}
	return u
}

func TestMetamorphicSMMDisjointUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.RandomConnected(8, 0.3, rng)
		g2 := graph.RandomConnected(11, 0.25, rng)
		u := disjointUnion(g1, g2)
		p := core.NewSMM()

		cfg1 := core.NewConfig[core.Pointer](g1)
		cfg1.Randomize(p, rand.New(rand.NewSource(int64(trial))))
		cfg2 := core.NewConfig[core.Pointer](g2)
		cfg2.Randomize(p, rand.New(rand.NewSource(int64(trial)+1000)))

		// Union initial state = shifted copies of the component states.
		cfgU := core.NewConfig[core.Pointer](u)
		copy(cfgU.States[:g1.N()], cfg1.States)
		for v, s := range cfg2.States {
			if s.IsNull() {
				cfgU.States[g1.N()+v] = core.Null
			} else {
				cfgU.States[g1.N()+v] = core.PointAt(s.Node() + graph.NodeID(g1.N()))
			}
		}

		r1 := NewLockstep[core.Pointer](p, cfg1).Run(g1.N() + 2)
		r2 := NewLockstep[core.Pointer](p, cfg2).Run(g2.N() + 2)
		rU := NewLockstep[core.Pointer](p, cfgU).Run(u.N() + 2)
		if !r1.Stable || !r2.Stable || !rU.Stable {
			t.Fatalf("trial %d: not stable", trial)
		}
		want := max(r1.Rounds, r2.Rounds)
		if rU.Rounds != want {
			t.Fatalf("trial %d: union rounds %d != max(%d,%d)", trial, rU.Rounds, r1.Rounds, r2.Rounds)
		}
		for v := 0; v < g1.N(); v++ {
			if cfgU.States[v] != cfg1.States[v] {
				t.Fatalf("trial %d: component-1 node %d diverged", trial, v)
			}
		}
		for v := 0; v < g2.N(); v++ {
			got := cfgU.States[g1.N()+v]
			want := cfg2.States[v]
			if want.IsNull() != got.IsNull() {
				t.Fatalf("trial %d: component-2 node %d diverged", trial, v)
			}
			if !want.IsNull() && got.Node() != want.Node()+graph.NodeID(g1.N()) {
				t.Fatalf("trial %d: component-2 node %d points at %v, want shifted %v",
					trial, v, got, want)
			}
		}
	}
}

func TestMetamorphicSMIDisjointUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.RandomConnected(9, 0.3, rng)
		g2 := graph.RandomConnected(7, 0.3, rng)
		u := disjointUnion(g1, g2)
		p := core.NewSMI()

		cfg1 := core.NewConfig[bool](g1)
		cfg1.Randomize(p, rand.New(rand.NewSource(int64(trial))))
		cfg2 := core.NewConfig[bool](g2)
		cfg2.Randomize(p, rand.New(rand.NewSource(int64(trial)+1000)))
		cfgU := core.NewConfig[bool](u)
		copy(cfgU.States[:g1.N()], cfg1.States)
		copy(cfgU.States[g1.N():], cfg2.States)

		r1 := NewLockstep[bool](p, cfg1).Run(g1.N() + 2)
		r2 := NewLockstep[bool](p, cfg2).Run(g2.N() + 2)
		rU := NewLockstep[bool](p, cfgU).Run(u.N() + 2)
		if !r1.Stable || !r2.Stable || !rU.Stable {
			t.Fatalf("trial %d: not stable", trial)
		}
		for v := 0; v < g1.N(); v++ {
			if cfgU.States[v] != cfg1.States[v] {
				t.Fatalf("trial %d: component-1 node %d diverged", trial, v)
			}
		}
		for v := 0; v < g2.N(); v++ {
			if cfgU.States[g1.N()+v] != cfg2.States[v] {
				t.Fatalf("trial %d: component-2 node %d diverged", trial, v)
			}
		}
	}
}

// SMI's fixed point is unique (the greedy descending-ID MIS), so the
// final set must be independent of the initial configuration.
func TestMetamorphicSMIInitIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(20, 0.2, rng)
		p := core.NewSMI()
		var reference []bool
		for init := 0; init < 5; init++ {
			cfg := core.NewConfig[bool](g)
			cfg.Randomize(p, rand.New(rand.NewSource(int64(init))))
			res := NewLockstep[bool](p, cfg).Run(g.N() + 2)
			if !res.Stable {
				t.Fatalf("trial %d init %d: %v", trial, init, res)
			}
			if reference == nil {
				reference = append([]bool(nil), cfg.States...)
				continue
			}
			for v := range reference {
				if cfg.States[v] != reference[v] {
					t.Fatalf("trial %d init %d: node %d in set = %v, reference %v",
						trial, init, v, cfg.States[v], reference[v])
				}
			}
		}
	}
}

// Adding isolated nodes (fresh IDs above the component) must not change
// the behavior of the original nodes.
func TestMetamorphicIsolatedPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(12, 0.3, rng)
	padded := graph.New(g.N() + 3)
	for _, e := range g.Edges() {
		padded.AddEdge(e.U, e.V)
	}
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(p, rand.New(rand.NewSource(9)))
	cfgP := core.NewConfig[core.Pointer](padded)
	copy(cfgP.States, cfg.States)
	for v := g.N(); v < padded.N(); v++ {
		cfgP.States[v] = core.Null
	}
	res := NewLockstep[core.Pointer](p, cfg).Run(g.N() + 2)
	resP := NewLockstep[core.Pointer](p, cfgP).Run(padded.N() + 2)
	if !res.Stable || !resP.Stable {
		t.Fatal("not stable")
	}
	for v := 0; v < g.N(); v++ {
		if cfg.States[v] != cfgP.States[v] {
			t.Fatalf("node %d diverged under padding", v)
		}
	}
}
