package sim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// spinner is a protocol that never stabilizes: every node is privileged
// in every configuration. It is the worst case RunCtx exists for — a
// Run over it with a large round budget never returns on its own.
type spinner struct{}

func (spinner) Name() string { return "spinner" }

func (spinner) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) int {
	return rng.Intn(2)
}

func (spinner) Move(v core.View[int]) (int, bool) { return 1 - v.Self, true }

func spinnerConfig(n int) core.Config[int] {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
	}
	return core.NewConfig[int](g)
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	l := NewLockstep[int](spinner{}, spinnerConfig(8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := l.RunCtx(ctx, 1<<30)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
	if res.Rounds != 0 || res.Stable {
		t.Fatalf("RunCtx on canceled ctx ran: %+v", res)
	}
}

func TestRunCtxStopsNonStabilizingRun(t *testing.T) {
	l := NewLockstep[int](spinner{}, spinnerConfig(8))
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	// Kick the canceller once the run is provably in flight: the hook
	// fires after the first active round.
	res, err := l.runLoop(ctx, 1<<30, true, true, func(round int, cfg core.Config[int]) {
		select {
		case <-started:
		default:
			close(started)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
	if res.Rounds < 1 {
		t.Fatalf("RunCtx stopped before any round: %+v", res)
	}
	if res.Stable {
		t.Fatalf("canceled run reported stable: %+v", res)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	g := graph.New(6)
	for v := 1; v < 6; v++ {
		g.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
	}
	rng := rand.New(rand.NewSource(7))
	cfgA := core.NewConfig[core.Pointer](g)
	cfgA.Randomize(core.NewSMM(), rng)
	cfgB := cfgA.Clone()

	a := NewLockstep(core.NewSMM(), cfgA)
	b := NewLockstep(core.NewSMM(), cfgB)
	ra := a.Run(100)
	rb, err := b.RunCtx(context.Background(), 100)
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if ra != rb {
		t.Fatalf("Run = %+v, RunCtx = %+v", ra, rb)
	}
	for v := range cfgA.States {
		if cfgA.States[v] != cfgB.States[v] {
			t.Fatalf("state divergence at node %d: %v vs %v", v, cfgA.States[v], cfgB.States[v])
		}
	}
}

// TestConvergeCtxChunkedMatchesOneShot pins the chunked-convergence
// determinism argument the service layer relies on: slicing one
// convergence run into many small ConvergeCtx calls lands on the exact
// states (and total active rounds) of a single uninterrupted Run.
func TestConvergeCtxChunkedMatchesOneShot(t *testing.T) {
	build := func() (core.Config[core.Pointer], *FaultLockstep[core.Pointer]) {
		g := graph.New(16)
		for v := 1; v < 16; v++ {
			g.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
		}
		g.AddEdge(0, 15)
		cfg := core.NewConfig[core.Pointer](g)
		for v := range cfg.States {
			cfg.States[v] = core.Null
		}
		return cfg, NewFaultLockstep(core.NewSMM(), cfg)
	}

	cfgA, fa := build()
	cfgB, fb := build()

	// Identical mutation on both: cut an edge, then corrupt a node.
	mutate := func(f *FaultLockstep[core.Pointer]) {
		f.SetLink(graph.NewEdge(3, 4), false)
		f.WriteState(7, core.PointAt(6))
	}
	fa.Lockstep().Run(100)
	fb.Lockstep().Run(100)
	mutate(fa)
	mutate(fb)

	resA, err := fa.Lockstep().ConvergeCtx(context.Background(), 100)
	if err != nil || !resA.Stable {
		t.Fatalf("one-shot ConvergeCtx: %+v err=%v", resA, err)
	}
	roundsB := 0
	for i := 0; i < 200; i++ {
		res, err := fb.Lockstep().ConvergeCtx(context.Background(), 2)
		if err != nil {
			t.Fatalf("chunked ConvergeCtx: %v", err)
		}
		roundsB += res.Rounds
		if res.Stable {
			break
		}
	}
	if roundsB != resA.Rounds {
		t.Fatalf("chunked rounds %d != one-shot rounds %d", roundsB, resA.Rounds)
	}
	for v := range cfgA.States {
		if cfgA.States[v] != cfgB.States[v] {
			t.Fatalf("state divergence at node %d: %v vs %v", v, cfgA.States[v], cfgB.States[v])
		}
	}
}

func TestShardedRunCtxCancel(t *testing.T) {
	l := NewShardedLockstep[int](spinner{}, spinnerConfig(64), 4)
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	canceled := false
	res, err := l.runLoop(ctx, 1<<30, true, true, func(round int, cfg core.Config[int]) {
		if round >= 3 && !canceled {
			canceled = true
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded RunCtx err = %v, want context.Canceled", err)
	}
	if res.Stable || res.Rounds < 3 {
		t.Fatalf("sharded RunCtx result: %+v", res)
	}
}

func TestParallelRunCtxCancel(t *testing.T) {
	l := NewParallel[int](spinner{}, spinnerConfig(32), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := l.RunCtx(ctx, 1<<30)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Parallel.RunCtx err = %v, want context.Canceled", err)
	}
	if res.Rounds != 0 || res.Stable {
		t.Fatalf("Parallel.RunCtx on canceled ctx ran: %+v", res)
	}

	// And a live cancellation: the non-stabilizing protocol would spin
	// forever without the ctx check.
	l2 := NewParallel[int](spinner{}, spinnerConfig(32), 4)
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	if _, err := l2.RunCtx(ctx2, 1<<30); !errors.Is(err, context.Canceled) {
		t.Fatalf("live cancel err = %v, want context.Canceled", err)
	}
}
