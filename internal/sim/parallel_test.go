package sim

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/protocols"
	"selfstab/internal/verify"
)

func TestParallelMatchesLockstepExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			g := graph.RandomConnected(40, 0.1, rng)
			p := core.NewSMM()
			cfg1 := core.NewConfig[core.Pointer](g)
			cfg1.Randomize(p, rand.New(rand.NewSource(int64(trial))))
			cfg2 := cfg1.Clone()

			serial := NewLockstep[core.Pointer](p, cfg1)
			parallel := NewParallel[core.Pointer](p, cfg2, workers)
			for round := 0; round < g.N()+2; round++ {
				m1 := serial.Step()
				m2 := parallel.Step()
				if m1 != m2 {
					t.Fatalf("workers %d trial %d round %d: moves %d vs %d",
						workers, trial, round, m1, m2)
				}
				for v := range cfg1.States {
					if cfg1.States[v] != cfg2.States[v] {
						t.Fatalf("workers %d trial %d round %d: node %d diverged",
							workers, trial, round, v)
					}
				}
				if m1 == 0 {
					break
				}
			}
		}
	}
}

func TestParallelRunSMI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(50, 0.08, rng)
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rng)
	l := NewParallel[bool](p, cfg, 4)
	res := l.Run(g.N() + 2)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if err := verify.IsMaximalIndependentSet(g, core.SetOf(cfg)); err != nil {
		t.Fatal(err)
	}
	if l.Name() != "SMI" || l.Rounds() != res.Rounds || l.Moves() != res.Moves {
		t.Fatal("accessors inconsistent")
	}
}

func TestParallelRandomizedProtocolRaceFree(t *testing.T) {
	// RandMIS uses per-node generators; running it on the parallel
	// executor under -race validates the concurrency contract. The
	// trajectory differs from serial execution (RNG draw order differs),
	// but the fixed point must still verify.
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomConnected(30, 0.12, rng)
	p := protocols.NewRandMIS(g.N(), 77)
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rng)
	l := NewParallel[bool](p, cfg, 8)
	res := l.Run(2000)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if err := verify.IsMaximalIndependentSet(g, core.SetOf(cfg)); err != nil {
		t.Fatal(err)
	}
}

// TestParallelHonorsLimit exercises the unstable path.
func TestParallelHonorsLimit(t *testing.T) {
	g := graph.Cycle(4)
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := NewParallel[core.Pointer](core.NewSMMArbitrary(), cfg, 2)
	res := l.Run(9)
	if res.Stable || res.Rounds != 9 {
		t.Fatalf("%v", res)
	}
}
