// Command clusterhead uses the hierarchically composed clustering
// protocol for the classical ad hoc organization task: Algorithm SMI
// elects clusterheads (an MIS: no two heads in radio range, every host
// hears a head) while a second self-stabilizing layer assigns every
// other host to its maximum-ID head neighbor — all in the same rounds,
// on the goroutine-per-node concurrent runtime. The demo then fails
// links between epochs and shows both layers self-healing together.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"selfstab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clusterhead: ")
	n := flag.Int("n", 30, "number of hosts")
	churn := flag.Int("churn", 4, "link events between elections")
	rounds := flag.Int("rounds", 3, "election epochs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, _ := selfstab.RandomUnitDisk(*n, 0.18, rng)
	fmt.Printf("unit-disk network: %v\n", g)

	p := selfstab.NewClustering()
	states := make([]selfstab.ClusterState, *n)
	for v := range states {
		states[v] = p.Random(selfstab.NodeID(v), g.Neighbors(selfstab.NodeID(v)), rng)
	}
	net := selfstab.NewConcurrentNetwork[selfstab.ClusterState](p, g, states)
	defer net.Close()

	for epoch := 0; epoch < *rounds; epoch++ {
		r, _, stable := net.Run(g.N() + 4)
		if !stable {
			log.Fatalf("epoch %d: election did not stabilize", epoch)
		}
		cfg := net.Config()
		var heads []selfstab.NodeID
		for v, s := range cfg.States {
			if s.A {
				heads = append(heads, selfstab.NodeID(v))
			}
		}
		if err := selfstab.IsMaximalIndependentSet(g, heads); err != nil {
			log.Fatalf("epoch %d: invalid head set: %v", epoch, err)
		}
		if err := selfstab.VerifyClustering(g, cfg.States); err != nil {
			log.Fatalf("epoch %d: invalid assignment: %v", epoch, err)
		}
		fmt.Printf("epoch %d: %d clusterheads elected and assigned in %d rounds\n",
			epoch, len(heads), r)
		printClusters(cfg.States, heads)

		if epoch < *rounds-1 {
			events := selfstab.NewChurn(g, rng).Apply(*churn)
			net.ApplyEvents(events)
			fmt.Printf("  mobility: %v\n", events)
		}
	}
}

// printClusters groups nodes by their assigned head pointer.
func printClusters(states []selfstab.ClusterState, heads []selfstab.NodeID) {
	members := make(map[selfstab.NodeID][]selfstab.NodeID)
	for v, s := range states {
		if !s.A && !s.B.IsNull() {
			members[s.B.Node()] = append(members[s.B.Node()], selfstab.NodeID(v))
		}
	}
	sorted := append([]selfstab.NodeID(nil), heads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, h := range sorted {
		fmt.Printf("  head %2d: members %v\n", h, members[h])
	}
}
