// Command paperwalk retells the paper section by section, executing each
// claim as it goes: the Figure 1 and Figure 4 rule systems, a watched SMM
// run with the Figure 2 node-type census, the Section 3 four-cycle
// counterexample (divergence live, then quantified exhaustively), the
// Theorem 1 and Theorem 2 bounds on a random ad hoc topology, and the
// fault-tolerance claim under link churn. Run it to see the whole
// reproduction in one screen of output.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"selfstab"
	"selfstab/internal/rules"
	"selfstab/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperwalk: ")

	fmt.Println("== The algorithms (Figures 1 and 4), as executable rule systems ==")
	fmt.Print(rules.SMMRules())
	fmt.Print(rules.SMIRules())

	fmt.Println("\n== A watched SMM run with the Figure 2 type census (path of 8) ==")
	g := selfstab.Path(8)
	cfg := selfstab.NewSMMConfig(g)
	tl := viz.NewTimeline("pointers per round (· aloof, ↔ matched):")
	tl.Add(viz.SMMLine(cfg) + "   [" + viz.TypeLine(cfg) + "]")
	l := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMM(), cfg)
	res := l.RunHook(g.N()+1, func(_ int, c selfstab.Config[selfstab.Pointer]) {
		tl.Add(viz.SMMLine(c) + "   [" + viz.TypeLine(c) + "]")
	})
	fmt.Print(tl.String())
	fmt.Printf("Theorem 1 bound: %d rounds; used: %d. Maximal: %v\n",
		g.N()+1, res.Rounds,
		selfstab.IsMaximalMatching(g, selfstab.MatchingOf(cfg)) == nil)

	fmt.Println("\n== Section 3: the four-cycle counterexample ==")
	c4 := selfstab.Cycle(4)
	bad := selfstab.NewSMMConfig(c4)
	lb := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMMArbitrary(), bad)
	tl2 := viz.NewTimeline("clockwise proposals from the all-null state:")
	tl2.Add(viz.SMMLine(bad))
	lb.RunHook(4, func(_ int, c selfstab.Config[selfstab.Pointer]) {
		tl2.Add(viz.SMMLine(c))
	})
	fmt.Print(tl2.String())
	fmt.Println("...and so on forever. Exhaustively:")
	rep, err := selfstab.ExploreAll[selfstab.Pointer](selfstab.NewSMMArbitrary(), c4, selfstab.SMMDomain, 1<<16, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v\n", rep)
	rep2, err := selfstab.ExploreAll[selfstab.Pointer](selfstab.NewSMM(), c4, selfstab.SMMDomain, 1<<16, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with min-ID proposals instead: %v\n", rep2)

	fmt.Println("\n== Theorems 1 and 2 on a random ad hoc topology ==")
	rng := rand.New(rand.NewSource(42))
	adhoc, _ := selfstab.RandomUnitDisk(32, 0.2, rng)
	mres, matching := selfstab.RunSMM(adhoc, 7)
	sres, mis := selfstab.RunSMI(adhoc, 7)
	fmt.Printf("unit-disk %v:\n", adhoc)
	fmt.Printf("  SMM: %v (bound %d), %d pairs, valid=%v\n",
		mres, adhoc.N()+1, len(matching), selfstab.IsMaximalMatching(adhoc, matching) == nil)
	fmt.Printf("  SMI: %v (bound %d), |S|=%d, valid=%v\n",
		sres, adhoc.N()+1, len(mis), selfstab.IsMaximalIndependentSet(adhoc, mis) == nil)

	fmt.Println("\n== Fault tolerance: link churn and local repair ==")
	cfg3 := selfstab.NewSMMConfig(adhoc)
	l3 := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMM(), cfg3)
	l3.Run(adhoc.N() + 1)
	before := append([]selfstab.Pointer(nil), cfg3.States...)
	events := selfstab.NewChurn(adhoc, rng).Apply(4)
	repaired := selfstab.NormalizeSMM(cfg3)
	res3 := l3.Run(adhoc.N() + 1)
	changed := 0
	for v := range before {
		if before[v] != cfg3.States[v] {
			changed++
		}
	}
	fmt.Printf("events %v: %d dangling pointers repaired, re-stabilized in %d rounds, %d/%d nodes changed state\n",
		events, repaired, res3.Rounds, changed, adhoc.N())
	if err := selfstab.IsMaximalMatching(adhoc, selfstab.MatchingOf(cfg3)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matching verified after churn — the paper's fault-tolerance claim, live")
}
