// Command multicast maintains the structure the paper's introduction
// motivates self-stabilization with: a spanning tree for
// multicast/broadcast message distribution in a mobile ad hoc network.
// The self-stabilizing BFS tree protocol elects the highest-ID host as
// the multicast root, builds exact shortest-hop paths, and — the point
// of the demo — rebuilds them automatically as mobility churns the
// links, starting every epoch from whatever stale tree the previous
// topology left behind. After every epoch the tree is verified for
// exact BFS distances, and a simulated multicast measures delivery
// hops.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"selfstab"
	"selfstab/internal/core"
	"selfstab/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multicast: ")
	n := flag.Int("n", 24, "number of hosts")
	epochs := flag.Int("epochs", 5, "mobility epochs")
	churn := flag.Int("churn", 3, "link events per epoch")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := selfstab.RandomConnected(*n, 0.12, rng)
	fmt.Printf("network: %v, diameter %d\n", g, selfstab.Diameter(g))

	p := selfstab.NewSpanningTree(*n)
	cfg := core.NewConfig[selfstab.TreeState](g)
	cfg.Randomize(p, rng) // arbitrary start, including fake root claims
	l := sim.NewLockstep[selfstab.TreeState](p, cfg)

	for epoch := 0; epoch <= *epochs; epoch++ {
		res := l.Run(5**n + 10)
		if !res.Stable {
			log.Fatalf("epoch %d: tree did not stabilize: %v", epoch, res)
		}
		if err := selfstab.VerifyTree(g, cfg.States); err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		root := selfstab.NodeID(g.N() - 1)
		fmt.Printf("epoch %d: tree rooted at %d rebuilt in %d rounds; multicast depth %d hops\n",
			epoch, root, res.Rounds, maxDepth(cfg.States))

		if epoch < *epochs {
			events := selfstab.NewChurn(g, rng).Apply(*churn)
			for _, ev := range events {
				if !ev.Add {
					for _, v := range [2]selfstab.NodeID{ev.Edge.U, ev.Edge.V} {
						other := ev.Edge.U ^ ev.Edge.V ^ v
						cfg.States[v] = p.OnNeighborLost(v, cfg.States[v], other)
					}
				}
			}
			fmt.Printf("  mobility: %v\n", events)
		}
	}
	fmt.Println("multicast tree survived all epochs")
}

// maxDepth returns the deepest node in the stable tree — the worst-case
// multicast delivery latency in hops.
func maxDepth(states []selfstab.TreeState) int {
	depth := 0
	for _, s := range states {
		if int(s.Dist) > depth {
			depth = int(s.Dist)
		}
	}
	return depth
}
