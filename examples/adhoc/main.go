// Command adhoc simulates the paper's target deployment end to end: a
// fleet of mobile hosts moving by random waypoint over the unit square,
// a discrete-event beacon link layer with jitter and loss, and Algorithm
// SMM maintaining a maximal matching through the resulting link failures
// and creations. Every epoch the hosts move, the link layer reports the
// changed links to the beacon network, and the protocol re-stabilizes;
// the program reports re-stabilization time and verifies the matching
// after every epoch.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"selfstab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adhoc: ")
	n := flag.Int("n", 24, "number of mobile hosts")
	epochs := flag.Int("epochs", 6, "mobility epochs to simulate")
	speed := flag.Float64("speed", 0.04, "host speed per epoch (unit square)")
	loss := flag.Float64("loss", 0.05, "beacon loss probability")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	way := selfstab.NewWaypoint(*n, 0.25, *speed, rng)
	g := way.Graph().Clone() // the beacon network owns its copy

	prm := selfstab.DefaultBeaconParams()
	prm.Jitter = 0.15
	prm.Loss = *loss

	states := make([]selfstab.Pointer, *n)
	for i := range states {
		states[i] = selfstab.Null
	}
	net := selfstab.NewBeaconNetwork[selfstab.Pointer](selfstab.NewSMM(), g, states, prm, rng)

	res := net.Run(float64(40**n), 6)
	if !res.Stable {
		log.Fatalf("initial stabilization failed: %v", res)
	}
	report("initial", res, net, g)

	for epoch := 1; epoch <= *epochs; epoch++ {
		events := way.Step()
		if !selfstab.IsConnected(way.Graph()) {
			// The paper assumes coordinated movement keeps the network
			// connected; skip epochs where the waypoint model would
			// disconnect it.
			fmt.Printf("epoch %d: movement would disconnect the network; hosts hold position\n", epoch)
			continue
		}
		for _, ev := range events {
			if ev.Add {
				net.AddLink(ev.Edge.U, ev.Edge.V)
			} else {
				net.RemoveLink(ev.Edge.U, ev.Edge.V)
			}
		}
		before := net.Now()
		res = net.Run(before+float64(60**n), 8)
		if !res.Stable {
			log.Fatalf("epoch %d: did not re-stabilize: %v", epoch, res)
		}
		// res.Time is the last protocol activity; if the changed links
		// did not disturb the matching there is nothing to re-stabilize.
		rounds := (res.Time - before) / prm.TB
		if rounds < 0 {
			rounds = 0
		}
		fmt.Printf("epoch %d: %d link events, re-stabilized in %.1f beacon rounds\n",
			epoch, len(events), rounds)
		verifyMatching(net, g)
	}
	fmt.Println("all epochs verified: the matching survived mobility")
}

func report(label string, res selfstab.BeaconResult, net *selfstab.BeaconNetwork[selfstab.Pointer], g *selfstab.Graph) {
	verifyMatching(net, g)
	fmt.Printf("%s: %v, matching size %d on %v\n",
		label, res, len(selfstab.MatchingOf(net.Config())), g)
}

func verifyMatching(net *selfstab.BeaconNetwork[selfstab.Pointer], g *selfstab.Graph) {
	if err := selfstab.IsMaximalMatching(g, selfstab.MatchingOf(net.Config())); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
}
