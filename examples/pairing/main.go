// Command pairing applies Algorithm SMM to the sensor buddy-system
// workload: every sensor should pair with exactly one radio neighbor for
// mutual health monitoring, as many pairs as a maximal matching allows.
// It contrasts the three execution models on the same topology and
// initial state — the lockstep reference, the classical central daemon,
// and the refined Hsu–Huang baseline — reproducing in miniature the
// paper's Section 3 comparison, and prints the final pairing with the
// node-type census (Figure 2's M / A° partition).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"selfstab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pairing: ")
	n := flag.Int("n", 20, "number of sensors")
	seed := flag.Int64("seed", 3, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, _ := selfstab.RandomUnitDisk(*n, 0.2, rng)
	fmt.Printf("sensor field: %v\n", g)

	// Shared arbitrary initial state — self-stabilization means any
	// starting pointer assignment converges.
	initial := selfstab.NewSMMConfig(g)
	selfstab.RandomizeConfig[selfstab.Pointer](initial, selfstab.NewSMM(), rng)

	// 1. The paper's SMM under the synchronous model.
	cfg := initial.Clone()
	l := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMM(), cfg)
	res := l.Run(g.N() + 2)
	if !res.Stable {
		log.Fatalf("SMM: %v", res)
	}
	pairs := selfstab.MatchingOf(cfg)
	if err := selfstab.IsMaximalMatching(g, pairs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SMM (synchronous):      %v\n", res)

	// 2. Hsu–Huang under a random central daemon (one move at a time).
	cfg2 := initial.Clone()
	r := selfstab.NewCentralRunner[selfstab.Pointer](selfstab.NewHsuHuang(), cfg2, selfstab.PickRandom, rng)
	dres := r.Run(20 * g.N() * g.N())
	if !dres.Stable {
		log.Fatalf("HsuHuang/central: %v", dres)
	}
	fmt.Printf("Hsu–Huang (central):    %v\n", dres)

	// 3. Hsu–Huang refined into the synchronous model — correct but
	// slower than SMM (the Section 3 observation).
	ref := selfstab.Refine[selfstab.Pointer](selfstab.NewHsuHuang(), g.N(), *seed)
	cfg3 := selfstab.Config[selfstab.RefState[selfstab.Pointer]]{G: g,
		States: make([]selfstab.RefState[selfstab.Pointer], g.N())}
	for v := range cfg3.States {
		cfg3.States[v] = selfstab.RefState[selfstab.Pointer]{Inner: initial.States[v]}
	}
	l3 := selfstab.NewLockstep[selfstab.RefState[selfstab.Pointer]](ref, cfg3)
	rres := l3.Run(500 * g.N())
	if !rres.Stable {
		log.Fatalf("refined: %v", rres)
	}
	fmt.Printf("Hsu–Huang (refined):    %v  (%.1fx the SMM rounds)\n",
		rres, float64(rres.Rounds)/float64(res.Rounds))

	// Final pairing and census from the SMM run.
	census := selfstab.CensusOf(selfstab.ClassifySMM(cfg))
	fmt.Printf("\nfinal buddy pairs (%d): %v\n", len(pairs), pairs)
	fmt.Printf("node types: %v\n", census)
	unpaired := g.N() - 2*len(pairs)
	fmt.Printf("%d sensors remain unpaired (aloof) — unavoidable: the matching is maximal\n", unpaired)
}
