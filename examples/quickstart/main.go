// Command quickstart is the smallest end-to-end use of the library: build
// a random connected ad hoc topology, run Algorithm SMM and Algorithm SMI
// to a fixed point, verify both results against the graph-theoretic
// oracles, and print the convergence statistics next to the paper's
// bounds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"selfstab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")
	n := flag.Int("n", 32, "number of nodes")
	p := flag.Float64("p", 0.1, "extra-edge probability beyond the random spanning tree")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := selfstab.RandomConnected(*n, *p, rng)
	fmt.Printf("topology: %v, diameter %d\n", g, selfstab.Diameter(g))

	// Maximal matching (Theorem 1: at most n+1 rounds).
	res, matching := selfstab.RunSMM(g, *seed)
	if !res.Stable {
		log.Fatalf("SMM did not stabilize: %v", res)
	}
	if err := selfstab.IsMaximalMatching(g, matching); err != nil {
		log.Fatalf("SMM output invalid: %v", err)
	}
	fmt.Printf("SMM: %v — %d matched pairs (bound: %d rounds)\n",
		res, len(matching), g.N()+1)

	// Maximal independent set (Theorem 2: O(n) rounds).
	res, mis := selfstab.RunSMI(g, *seed)
	if !res.Stable {
		log.Fatalf("SMI did not stabilize: %v", res)
	}
	if err := selfstab.IsMaximalIndependentSet(g, mis); err != nil {
		log.Fatalf("SMI output invalid: %v", err)
	}
	fmt.Printf("SMI: %v — independent set of %d nodes: %v\n", res, len(mis), mis)

	// An MIS is also a minimal dominating set — the resource-center
	// placement the paper's introduction motivates.
	if err := selfstab.IsMinimalDominatingSet(g, mis); err != nil {
		log.Fatalf("MIS not minimal dominating: %v", err)
	}
	fmt.Println("the MIS doubles as a minimal dominating set (resource placement)")
}
