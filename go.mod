module selfstab

go 1.23
