# Standard developer workflow for the selfstab reproduction.

GO ?= go

# Pinned external lint tools, installed by `make tools` (network
# required; local runs without them skip gracefully — see `lint`).
STATICCHECK_VERSION ?= v0.5.1
GOVULNCHECK_VERSION ?= v1.1.3

LINTBIN := bin/selfstablint

.PHONY: all build vet lint tools test race cover bench experiments experiments-quick soak soak-quick fuzz clean

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom determinism/concurrency analyzers
# (detrand, mapiter, guarded — see docs/STATIC_ANALYSIS.md) through the
# standard `go vet -vettool` protocol, then staticcheck and govulncheck
# when installed. The custom suite is mandatory; the external tools are
# skipped with a notice if absent so offline checkouts still lint.
lint:
	$(GO) build -o $(LINTBIN) ./cmd/selfstablint
	$(GO) vet -vettool=$(CURDIR)/$(LINTBIN) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (run 'make tools')"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (run 'make tools')"; \
	fi

# tools installs the pinned external linters (see tools.go for why the
# versions live here rather than in go.mod).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate every reproduction table (EXPERIMENTS.md is this output).
experiments:
	$(GO) run ./cmd/experiments -markdown

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Fault-injection soak campaigns (see docs/DESIGN.md, "Fault model &
# recovery verification"). Failing schedules are shrunk to minimal
# repros and written to soak-out/. soak-quick is the CI-sized, race-
# enabled budget.
soak:
	$(GO) run ./cmd/soak -seed 1 -out soak-out

soak-quick:
	$(GO) run -race ./cmd/soak -quick -seed 1 -out soak-out

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzSMMMove -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzSMIMove -fuzztime=30s ./internal/core/

clean:
	$(GO) clean ./...
	rm -rf bin
