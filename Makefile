# Standard developer workflow for the selfstab reproduction.

GO ?= go

.PHONY: all build vet test race cover bench experiments experiments-quick fuzz clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every reproduction table (EXPERIMENTS.md is this output).
experiments:
	$(GO) run ./cmd/experiments -markdown

experiments-quick:
	$(GO) run ./cmd/experiments -quick

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/graph/

clean:
	$(GO) clean ./...
