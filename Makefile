# Standard developer workflow for the selfstab reproduction.

GO ?= go

# Pinned external lint tools, installed by `make tools` (network
# required; local runs without them skip gracefully — see `lint`).
STATICCHECK_VERSION ?= v0.5.1
GOVULNCHECK_VERSION ?= v1.1.3

LINTBIN := bin/selfstablint

# SARIF output of `make lint-sarif`: per-unit fragments, then the merged
# 2.1.0 report code-scanning consumes.
SARIF_FRAGMENTS := lint-sarif-out
SARIF_REPORT := selfstablint.sarif

# Benchmark baseline: BENCH_3.json holds labeled runs of the large-n,
# million-node sharded, and service group-commit benchmarks (parsed
# metrics + raw benchfmt lines, benchstat-compatible; see
# cmd/benchjson). BENCH_1.json (pre-sharding) and BENCH_2.json
# (pre-group-commit) are the frozen historical baselines. bench-json
# appends a fresh labeled run; bench-diff compares a fresh run against
# the last recorded one and exits non-zero past the threshold
# (cross-machine, so advisory only); bench-gate is the blocking variant
# — it compares against a baseline measured on the same runner minutes
# earlier, so CI can fail the check on a >10% ns/op regression in a
# pinned benchmark.
BENCH_JSON := BENCH_3.json
BENCH_PATTERN ?= BenchmarkLarge|BenchmarkShard|BenchmarkServiceMutations
BENCH_PKGS ?= . ./internal/service
BENCH_LABEL ?= dev
BENCH_GATE_BASE ?= bench-base.json
BENCH_PIN ?= ^Benchmark(Large|Shard1M)_|^BenchmarkServiceMutations

.PHONY: all build vet lint lint-sarif lint-diff lint-service tools test race cover bench bench-json bench-diff bench-gate bench-trend service-test load-smoke experiments experiments-quick soak soak-quick fuzz clean

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom determinism/concurrency analyzers
# (detrand, mapiter, guarded, plus the dataflow tier: purity,
# exhaustive, lockorder, the allocation/shard-isolation tier:
# noalloc, shardsafe, and the service-invariant tier: walorder,
# singlewriter, ctxflow — see docs/STATIC_ANALYSIS.md) through the
# standard `go vet -vettool` protocol, then staticcheck and govulncheck
# when installed. The custom suite is mandatory; the external tools are
# skipped with a notice if absent so offline checkouts still lint.
# Cross-package facts (purity summaries, lock-order edges, noalloc
# allocation summaries and interface contracts, walorder durable-field
# and journal-role sets, singlewriter owner sets, ctxflow durability
# obligations) ride the go command's vet fact files, so they are cached
# in GOCACHE with the rest of the vet results.
lint:
	$(GO) build -o $(LINTBIN) ./cmd/selfstablint
	$(GO) vet -vettool=$(CURDIR)/$(LINTBIN) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (run 'make tools')"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (run 'make tools')"; \
	fi

# lint-sarif runs the custom analyzers with per-unit SARIF fragments and
# merges them into one SARIF 2.1.0 report for code scanning. The report
# is produced even when there are findings; the vet exit status is
# preserved so CI still fails on them.
lint-sarif:
	$(GO) build -o $(LINTBIN) ./cmd/selfstablint
	@rm -rf $(SARIF_FRAGMENTS) && mkdir -p $(SARIF_FRAGMENTS)
	@status=0; \
	$(GO) vet -vettool=$(CURDIR)/$(LINTBIN) -sarifdir=$(CURDIR)/$(SARIF_FRAGMENTS) ./... || status=$$?; \
	./$(LINTBIN) -sarif $(SARIF_FRAGMENTS) -sarifroot $(CURDIR) > $(SARIF_REPORT); \
	echo "lint-sarif: wrote $(SARIF_REPORT)"; \
	exit $$status

# lint-diff prints only the custom-analyzer diagnostics that land in
# files this branch touches relative to origin/main (main itself is kept
# lint-clean by CI, so these are exactly the new findings). Falls back
# to a notice when origin/main is unavailable (shallow or detached
# checkouts) — run `make lint` for the full run.
lint-diff:
	$(GO) build -o $(LINTBIN) ./cmd/selfstablint
	@base=$$(git merge-base HEAD origin/main 2>/dev/null); \
	if [ -z "$$base" ]; then \
		echo "lint-diff: cannot resolve origin/main; run 'make lint' for the full suite"; exit 0; \
	fi; \
	changed=$$(git diff --name-only $$base -- '*.go'); \
	if [ -z "$$changed" ]; then echo "lint-diff: no Go files changed vs origin/main"; exit 0; fi; \
	out=$$($(GO) vet -vettool=$(CURDIR)/$(LINTBIN) ./... 2>&1 | grep -v '^#' || true); \
	new=''; \
	for f in $$changed; do \
		hits=$$(printf '%s\n' "$$out" | grep -F "$$f:"); \
		if [ -n "$$hits" ]; then new="$$new$$hits\n"; fi; \
	done; \
	if [ -n "$$new" ]; then printf "$$new"; exit 1; \
	else echo "lint-diff: no new diagnostics vs origin/main"; fi

# lint-service runs the full analyzer suite scoped to the crash-recovery
# surface — the service layer plus the binaries on top of it. This is
# the fast inner loop while editing internal/service: the
# service-invariant tier (walorder, singlewriter, ctxflow) gets its
# dependencies' facts built by the go command on demand, so the run
# stays a few seconds instead of the whole-repo sweep.
lint-service:
	$(GO) build -o $(LINTBIN) ./cmd/selfstablint
	$(GO) vet -vettool=$(CURDIR)/$(LINTBIN) ./internal/service/... ./cmd/selfstabd/... ./cmd/stabload/...

# tools installs the pinned external linters (see tools.go for why the
# versions live here rather than in go.mod).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Append a labeled run of the large-n benchmarks to the committed
# baseline: make bench-json BENCH_LABEL=my-change
bench-json:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -run='^$$' $(BENCH_PKGS) > bench-out.txt
	$(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -merge $(BENCH_JSON) < bench-out.txt > $(BENCH_JSON).tmp
	mv $(BENCH_JSON).tmp $(BENCH_JSON)
	rm -f bench-out.txt

# Compare a fresh run against the last recorded baseline run. Exits 1 on
# any >1.25x ns/op regression; CI treats that as a warning, not a gate
# (the committed baseline was measured on a different machine, so ns/op
# ratios against it are too noisy to block merges on).
bench-diff:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -run='^$$' $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -diff $(BENCH_JSON)

# Blocking regression gate: compare a fresh run against a baseline
# recorded on this same machine (CI measures origin/main in a worktree
# right before this), failing on any pinned benchmark >10% slower.
# Record the baseline with:
#   git worktree add /tmp/base origin/main && cd /tmp/base && \
#   make bench-json BENCH_JSON=$(CURDIR)/$(BENCH_GATE_BASE)
bench-gate:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -run='^$$' $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -gate $(BENCH_GATE_BASE) -pin '$(BENCH_PIN)'

# Per-benchmark ns/op + allocs history across every committed baseline
# file (BENCH_1.json, BENCH_2.json, ...), oldest first.
bench-trend:
	$(GO) run ./cmd/benchjson -trend

# The selfstabd resilience tier: daemon, service layer, and load
# generator under the race detector. This includes the chaos test (fault
# schedule via the HTTP API with drops/dups/reorders and a kill/restart
# mid-schedule) and the crash-recovery replay pins.
service-test:
	$(GO) test -race -count=1 ./internal/service/... ./cmd/selfstabd/... ./cmd/stabload/...

# Non-blocking load smoke: hammer an in-process daemon with tight
# per-tenant limits and write the latency/status report. The run fails
# only if the generator itself fails; CI uploads load-smoke.json as an
# artifact so p50/p99 and the 429/503 mix are reviewable per commit.
load-smoke:
	$(GO) run ./cmd/stabload -duration 5s -workers 8 -tenants 4 -n 64 \
		-rate 50 -burst 20 -queue 8 -out load-smoke.json
	@cat load-smoke.json

# Regenerate every reproduction table (EXPERIMENTS.md is this output).
experiments:
	$(GO) run ./cmd/experiments -markdown

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Fault-injection soak campaigns (see DESIGN.md, "Fault model &
# recovery verification"). Failing schedules are shrunk to minimal
# repros and written to soak-out/. soak-quick is the CI-sized, race-
# enabled budget.
soak:
	$(GO) run ./cmd/soak -seed 1 -out soak-out

soak-quick:
	$(GO) run -race ./cmd/soak -quick -seed 1 -out soak-out

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzGraphJSON -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzSMMMove -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzSMIMove -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzShardPartition -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzJournalRecover -fuzztime=30s ./internal/service/

clean:
	$(GO) clean ./...
	rm -rf bin $(SARIF_FRAGMENTS) $(SARIF_REPORT) bench-out.txt $(BENCH_JSON).tmp bench-base.json load-smoke.json
