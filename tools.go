//go:build tools

// Package tools pins the external developer tooling this repo expects.
//
// The conventional pattern imports each tool's main package here so that
// go.mod records its version. This module deliberately does NOT: the
// repo must build and lint from a network-free checkout (the custom
// analyzers under internal/analysis are stdlib-only for exactly that
// reason), so go.mod carries no third-party requirements. Instead the
// pinned versions live in the Makefile and are installed as standalone
// binaries:
//
//	make tools   # go install staticcheck@$(STATICCHECK_VERSION), govulncheck@$(GOVULNCHECK_VERSION)
//
// Pinned versions (keep in sync with the Makefile and .github/workflows/ci.yml):
//
//   - honnef.co/go/tools/cmd/staticcheck  $(STATICCHECK_VERSION)
//   - golang.org/x/vuln/cmd/govulncheck   $(GOVULNCHECK_VERSION)
//   - golang.org/x/tools                  not required: internal/analysis/lint
//     mirrors the go/analysis API so the passes can migrate to the real
//     framework (and gain facts/SSA) once vendoring is introduced.
//
// `make lint` degrades gracefully when the binaries are absent, so this
// file is documentation plus a build-tagged placeholder, never compiled
// into any target.
package tools
