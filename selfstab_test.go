package selfstab

import (
	"math/rand"
	"testing"
)

func TestRunSMMFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomConnected(40, 0.1, rng)
	res, matching := RunSMM(g, 7)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if res.Rounds > g.N()+1 {
		t.Fatalf("rounds %d > bound %d", res.Rounds, g.N()+1)
	}
	if err := IsMaximalMatching(g, matching); err != nil {
		t.Fatal(err)
	}
}

func TestRunSMIFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomConnected(40, 0.1, rng)
	res, mis := RunSMI(g, 7)
	if !res.Stable || res.Rounds > g.N()+1 {
		t.Fatalf("%v", res)
	}
	if err := IsMaximalIndependentSet(g, mis); err != nil {
		t.Fatal(err)
	}
	if err := IsMinimalDominatingSet(g, mis); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConfigsAndExecutors(t *testing.T) {
	g := Path(8)
	cfg := NewSMMConfig(g)
	for _, s := range cfg.States {
		if s != Null {
			t.Fatal("NewSMMConfig not all-null")
		}
	}
	l := NewLockstep[Pointer](NewSMM(), cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		t.Fatalf("%v", res)
	}

	smi := NewSMIConfig(g)
	RandomizeConfig[bool](smi, NewSMI(), rand.New(rand.NewSource(3)))
	l2 := NewLockstep[bool](NewSMI(), smi)
	if res := l2.Run(g.N() + 2); !res.Stable {
		t.Fatalf("%v", res)
	}
}

func TestFacadeConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomConnected(12, 0.25, rng)
	net := NewConcurrentNetwork[Pointer](NewSMM(), g, NewSMMConfig(g).States)
	defer net.Close()
	rounds, _, stable := net.Run(g.N() + 2)
	if !stable {
		t.Fatalf("not stable after %d rounds", rounds)
	}
	if err := IsMaximalMatching(g, MatchingOf(net.Config())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBeacon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(10, 0.3, rng)
	net := NewBeaconNetwork[bool](NewSMI(), g, make([]bool, g.N()), DefaultBeaconParams(), rng)
	res := net.Run(500, 5)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if err := IsMaximalIndependentSet(g, SetOf(net.Config())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRefineAndDaemon(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomConnected(10, 0.3, rng)

	// Refined Hsu–Huang through the facade.
	ref := Refine[Pointer](NewHsuHuang(), g.N(), 1)
	if ref.Name() != "Refined(HsuHuang)" {
		t.Fatal(ref.Name())
	}

	// Central daemon runner through the facade.
	cfg := NewSMMConfig(g)
	r := NewCentralRunner[Pointer](NewHsuHuang(), cfg, PickRandom, rng)
	res := r.Run(10 * g.N() * g.N())
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if err := IsMaximalMatching(g, MatchingOf(r.Config())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Fatal("experiment count")
	}
	e, ok := ExperimentByID("E4")
	if !ok {
		t.Fatal("E4 missing")
	}
	if tbl := e.Run(QuickExperimentOptions()); !tbl.Passed {
		t.Fatal("E4 failed via facade")
	}
}
