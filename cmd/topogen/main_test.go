package main

import (
	"strings"
	"testing"
)

func TestRunEdgeList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-topology", "cycle", "-n", "6", "-format", "edges"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "# cycle n=6 m=6") {
		t.Fatalf("edge list missing header:\n%s", got)
	}
	if lines := strings.Count(got, "\n"); lines != 7 { // header + 6 edges
		t.Fatalf("edge list has %d lines, want 7:\n%s", lines, got)
	}
}

func TestRunDOTWithOverlay(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-topology", "cycle", "-n", "12", "-overlay", "smm", "-format", "dot"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "SMM") {
		t.Fatalf("DOT output missing overlay name:\n%s", got)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	gen := func() string {
		var out strings.Builder
		if code := run([]string{"-topology", "gnp", "-n", "16", "-seed", "7", "-format", "edges"}, &out, new(strings.Builder)); code != 0 {
			t.Fatalf("run failed: %d", code)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different edge lists")
	}
}

func TestRunBadFormat(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-topology", "path", "-n", "4", "-format", "yaml"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown format") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunBadOverlay(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-overlay", "tree"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
