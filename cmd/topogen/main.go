// Command topogen generates experiment topologies and emits them as DOT
// or edge lists, optionally highlighting the maximal matching or
// independent set a protocol run produces — handy for eyeballing the
// structures the paper maintains.
//
// Examples:
//
//	topogen -topology disk -n 40 -format dot > disk.dot
//	topogen -topology cycle -n 12 -overlay smm -format dot > matched.dot
//	topogen -topology gnp -n 24 -format edges
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"selfstab"
	"selfstab/internal/cli"
	"selfstab/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	var (
		topology = flag.String("topology", "gnp", strings.Join(cli.TopologyNames, " | "))
		n        = flag.Int("n", 24, "number of nodes")
		p        = flag.Float64("p", 0.1, "edge probability / radius hint")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "dot", "dot | edges")
		overlay  = flag.String("overlay", "", "run a protocol and highlight its output: smm | smi")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		log.Fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	opt := selfstab.DOTOptions{Name: "G"}
	switch *overlay {
	case "":
	case "smm":
		res, matching := selfstab.RunSMM(g, *seed)
		if !res.Stable {
			log.Fatalf("SMM did not stabilize: %v", res)
		}
		opt.Name = "SMM"
		opt.Highlight = map[graph.Edge]bool{}
		for _, e := range matching {
			opt.Highlight[e] = true
		}
	case "smi":
		res, mis := selfstab.RunSMI(g, *seed)
		if !res.Stable {
			log.Fatalf("SMI did not stabilize: %v", res)
		}
		opt.Name = "SMI"
		opt.FillNodes = map[graph.NodeID]bool{}
		for _, v := range mis {
			opt.FillNodes[v] = true
		}
	default:
		log.Fatalf("unknown overlay %q", *overlay)
	}

	switch *format {
	case "dot":
		if err := selfstab.WriteDOT(out, g, opt); err != nil {
			log.Fatal(err)
		}
	case "edges":
		fmt.Fprintf(out, "# %s n=%d m=%d\n", *topology, g.N(), g.M())
		for _, e := range g.Edges() {
			fmt.Fprintf(out, "%d %d\n", e.U, e.V)
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
