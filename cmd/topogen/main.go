// Command topogen generates experiment topologies and emits them as DOT
// or edge lists, optionally highlighting the maximal matching or
// independent set a protocol run produces — handy for eyeballing the
// structures the paper maintains.
//
// Examples:
//
//	topogen -topology disk -n 40 -format dot > disk.dot
//	topogen -topology cycle -n 12 -overlay smm -format dot > matched.dot
//	topogen -topology gnp -n 24 -format edges
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"selfstab"
	"selfstab/internal/cli"
	"selfstab/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, the
// graph goes to stdout, diagnostics to stderr, and the process exit
// code is returned (0 ok, 1 generation failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	logger := log.New(stderr, "topogen: ", 0)
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topology = fs.String("topology", "gnp", strings.Join(cli.TopologyNames, " | "))
		n        = fs.Int("n", 24, "number of nodes")
		p        = fs.Float64("p", 0.1, "edge probability / radius hint")
		seed     = fs.Int64("seed", 1, "random seed")
		format   = fs.String("format", "dot", "dot | edges")
		overlay  = fs.String("overlay", "", "run a protocol and highlight its output: smm | smi")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		logger.Print(err)
		return 2
	}
	out := bufio.NewWriter(stdout)
	defer out.Flush()

	opt := selfstab.DOTOptions{Name: "G"}
	switch *overlay {
	case "":
	case "smm":
		res, matching := selfstab.RunSMM(g, *seed)
		if !res.Stable {
			logger.Printf("SMM did not stabilize: %v", res)
			return 1
		}
		opt.Name = "SMM"
		opt.Highlight = map[graph.Edge]bool{}
		for _, e := range matching {
			opt.Highlight[e] = true
		}
	case "smi":
		res, mis := selfstab.RunSMI(g, *seed)
		if !res.Stable {
			logger.Printf("SMI did not stabilize: %v", res)
			return 1
		}
		opt.Name = "SMI"
		opt.FillNodes = map[graph.NodeID]bool{}
		for _, v := range mis {
			opt.FillNodes[v] = true
		}
	default:
		logger.Printf("unknown overlay %q", *overlay)
		return 2
	}

	switch *format {
	case "dot":
		if err := selfstab.WriteDOT(out, g, opt); err != nil {
			logger.Print(err)
			return 1
		}
	case "edges":
		fmt.Fprintf(out, "# %s n=%d m=%d\n", *topology, g.N(), g.M())
		for _, e := range g.Edges() {
			fmt.Fprintf(out, "%d %d\n", e.U, e.V)
		}
	default:
		logger.Printf("unknown format %q", *format)
		return 2
	}
	return 0
}
