package main

import (
	"strings"
	"testing"
)

func TestRunSMMCycle(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "smm", "-topology", "cycle", "-n", "5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "exhaustive:") || !strings.Contains(got, "fixed points") {
		t.Fatalf("stdout missing report:\n%s", got)
	}
	if !strings.Contains(got, "every configuration stabilizes within the bound") {
		t.Fatalf("SMM on C5 should verify the n+1 bound:\n%s", got)
	}
}

// TestRunCounterexample checks the paper's four-cycle counterexample:
// the arbitrary-proposal variant must report divergent configurations.
func TestRunCounterexample(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "smm-arbitrary", "-topology", "cycle", "-n", "4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "divergent") || !strings.Contains(got, "example cycle configuration") {
		t.Fatalf("counterexample run should report divergence:\n%s", got)
	}
}

// TestRunWorkersDeterministic checks the byte-identical-report contract
// the determinism lint suite exists to protect: any -workers value must
// produce the same stdout.
func TestRunWorkersDeterministic(t *testing.T) {
	var ref strings.Builder
	if code := run([]string{"-protocol", "smi", "-topology", "path", "-n", "10", "-workers", "1"}, &ref, new(strings.Builder)); code != 0 {
		t.Fatalf("reference run failed: %d", code)
	}
	for _, w := range []string{"2", "7"} {
		var out strings.Builder
		if code := run([]string{"-protocol", "smi", "-topology", "path", "-n", "10", "-workers", w}, &out, new(strings.Builder)); code != 0 {
			t.Fatalf("workers=%s run failed: %d", w, code)
		}
		if out.String() != ref.String() {
			t.Fatalf("workers=%s output differs from workers=1:\n%q\nvs\n%q", w, out.String(), ref.String())
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "randmis"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 (randomized protocols cannot be model checked)", code)
	}
	if !strings.Contains(errOut.String(), "deterministic protocols only") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunLimitExceeded(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "smi", "-topology", "path", "-n", "16", "-limit", "100"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1 for exceeded state-space limit", code)
	}
	if !strings.Contains(errOut.String(), "exceeds limit") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}
