// Command modelcheck exhaustively explores EVERY configuration of a
// deterministic protocol on a small topology, reporting the exact
// worst-case stabilization time, the number of reachable fixed points
// (each verified against the graph-theoretic oracle), and any divergent
// configurations — the machine-checked version of the paper's theorems
// on instances small enough to enumerate.
//
// Examples:
//
//	modelcheck -protocol smm -topology cycle -n 7
//	modelcheck -protocol smm-arbitrary -topology cycle -n 4   # the counterexample, counted
//	modelcheck -protocol smi -topology path -n 16
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"runtime"

	"selfstab/internal/cli"
	"selfstab/internal/core"
	"selfstab/internal/modelcheck"
	"selfstab/internal/protocols"
	"selfstab/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, the
// report goes to stdout, diagnostics to stderr, and the process exit
// code is returned (0 ok, 1 exploration failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	logger := log.New(stderr, "modelcheck: ", 0)
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protocol = fs.String("protocol", "smm", "smm | smm-arbitrary | smi | coloring")
		topology = fs.String("topology", "cycle", "path | cycle | complete | star | grid | tree | gnp | disk | lollipop | barbell")
		n        = fs.Int("n", 6, "number of nodes (state space grows exponentially!)")
		p        = fs.Float64("p", 0.2, "edge probability / radius hint")
		seed     = fs.Int64("seed", 1, "random seed (random topologies)")
		limit    = fs.Uint64("limit", 1<<26, "maximum state-space size")
		workers  = fs.Int("workers", runtime.NumCPU(), "shard the exploration across this many goroutines (report is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		logger.Print(err)
		return 2
	}
	fmt.Fprintf(stdout, "%s on %s %v\n", *protocol, *topology, g)

	switch *protocol {
	case "smm", "smm-arbitrary":
		var proto *core.SMM
		if *protocol == "smm" {
			proto = core.NewSMM()
		} else {
			proto = core.NewSMMArbitrary()
		}
		rep, err := modelcheck.ExploreWorkers[core.Pointer](proto, g, modelcheck.SMMDomain, *limit,
			func(states []core.Pointer) error {
				cfg := core.Config[core.Pointer]{G: g, States: states}
				return verify.IsMaximalMatching(g, core.MatchingOf(cfg))
			}, *workers)
		return report(rep, err, g.N()+1, stdout, logger)
	case "smi":
		rep, err := modelcheck.ExploreWorkers[bool](core.NewSMI(), g, modelcheck.SMIDomain, *limit,
			func(states []bool) error {
				cfg := core.Config[bool]{G: g, States: states}
				return verify.IsMaximalIndependentSet(g, core.SetOf(cfg))
			}, *workers)
		return report(rep, err, g.N()+1, stdout, logger)
	case "coloring":
		rep, err := modelcheck.ExploreWorkers[int](protocols.NewColoring(), g, modelcheck.ColoringDomain, *limit,
			func(states []int) error { return verify.IsProperColoring(g, states) }, *workers)
		return report(rep, err, g.N()+1, stdout, logger)
	default:
		logger.Printf("unknown protocol %q (deterministic protocols only)", *protocol)
		return 2
	}
}

func report[S comparable](rep *modelcheck.Report[S], err error, bound int, stdout io.Writer, logger *log.Logger) int {
	if err != nil {
		logger.Print(err)
		return 1
	}
	fmt.Fprintln(stdout, rep)
	fmt.Fprintf(stdout, "bound n+1 = %d; worst start: %v\n", bound, rep.WorstStart)
	if rep.Divergent > 0 {
		fmt.Fprintf(stdout, "example cycle configuration: %v\n", rep.CycleExample)
	} else if rep.MaxRounds <= bound {
		fmt.Fprintln(stdout, "every configuration stabilizes within the bound; every fixed point verified")
	}
	return 0
}
