// Command modelcheck exhaustively explores EVERY configuration of a
// deterministic protocol on a small topology, reporting the exact
// worst-case stabilization time, the number of reachable fixed points
// (each verified against the graph-theoretic oracle), and any divergent
// configurations — the machine-checked version of the paper's theorems
// on instances small enough to enumerate.
//
// Examples:
//
//	modelcheck -protocol smm -topology cycle -n 7
//	modelcheck -protocol smm-arbitrary -topology cycle -n 4   # the counterexample, counted
//	modelcheck -protocol smi -topology path -n 16
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"selfstab/internal/cli"
	"selfstab/internal/core"
	"selfstab/internal/modelcheck"
	"selfstab/internal/protocols"
	"selfstab/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelcheck: ")
	var (
		protocol = flag.String("protocol", "smm", "smm | smm-arbitrary | smi | coloring")
		topology = flag.String("topology", "cycle", "path | cycle | complete | star | grid | tree | gnp | disk | lollipop | barbell")
		n        = flag.Int("n", 6, "number of nodes (state space grows exponentially!)")
		p        = flag.Float64("p", 0.2, "edge probability / radius hint")
		seed     = flag.Int64("seed", 1, "random seed (random topologies)")
		limit    = flag.Uint64("limit", 1<<26, "maximum state-space size")
		workers  = flag.Int("workers", runtime.NumCPU(), "shard the exploration across this many goroutines (report is identical for any value)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s %v\n", *protocol, *topology, g)

	switch *protocol {
	case "smm", "smm-arbitrary":
		var proto *core.SMM
		if *protocol == "smm" {
			proto = core.NewSMM()
		} else {
			proto = core.NewSMMArbitrary()
		}
		rep, err := modelcheck.ExploreWorkers[core.Pointer](proto, g, modelcheck.SMMDomain, *limit,
			func(states []core.Pointer) error {
				cfg := core.Config[core.Pointer]{G: g, States: states}
				return verify.IsMaximalMatching(g, core.MatchingOf(cfg))
			}, *workers)
		report(rep, err, g.N()+1)
	case "smi":
		rep, err := modelcheck.ExploreWorkers[bool](core.NewSMI(), g, modelcheck.SMIDomain, *limit,
			func(states []bool) error {
				cfg := core.Config[bool]{G: g, States: states}
				return verify.IsMaximalIndependentSet(g, core.SetOf(cfg))
			}, *workers)
		report(rep, err, g.N()+1)
	case "coloring":
		rep, err := modelcheck.ExploreWorkers[int](protocols.NewColoring(), g, modelcheck.ColoringDomain, *limit,
			func(states []int) error { return verify.IsProperColoring(g, states) }, *workers)
		report(rep, err, g.N()+1)
	default:
		log.Fatalf("unknown protocol %q (deterministic protocols only)", *protocol)
	}
}

func report[S comparable](rep *modelcheck.Report[S], err error, bound int) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("bound n+1 = %d; worst start: %v\n", bound, rep.WorstStart)
	if rep.Divergent > 0 {
		fmt.Printf("example cycle configuration: %v\n", rep.CycleExample)
	} else if rep.MaxRounds <= bound {
		fmt.Println("every configuration stabilizes within the bound; every fixed point verified")
	}
}
