// Command selfstab runs one self-stabilizing protocol on one topology
// under a chosen executor and reports convergence, with optional
// round-by-round trace output (CSV), an ASCII timeline, and DOT
// rendering of the final configuration.
//
// Examples:
//
//	selfstab -protocol smm -topology gnp -n 64 -trials 20
//	selfstab -protocol smi -topology disk -n 100 -executor beacon -jitter 0.2
//	selfstab -protocol smm-arbitrary -topology cycle -n 4 -max-rounds 50
//	selfstab -protocol smm -topology path -n 16 -trace trace.csv -viz
//	selfstab -protocol tree -topology lollipop -n 32
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"selfstab"
	"selfstab/internal/cli"
	"selfstab/internal/core"
	"selfstab/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, results
// go to stdout, diagnostics to stderr, and the process exit code is
// returned (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	logger := log.New(stderr, "selfstab: ", 0)
	fs := flag.NewFlagSet("selfstab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protocol  = fs.String("protocol", "smm", strings.Join(cli.ProtocolNames, " | "))
		topology  = fs.String("topology", "gnp", strings.Join(cli.TopologyNames, " | "))
		n         = fs.Int("n", 32, "number of nodes")
		p         = fs.Float64("p", 0.1, "edge probability (gnp) / radius hint (disk)")
		seed      = fs.Int64("seed", 1, "random seed")
		trials    = fs.Int("trials", 1, "independent trials (random initial states)")
		maxRounds = fs.Int("max-rounds", 0, "round limit (0 = protocol-derived default)")
		executor  = fs.String("executor", "lockstep", strings.Join(cli.ExecutorNames, " | "))
		jitter    = fs.Float64("jitter", 0.1, "beacon jitter fraction (executor=beacon)")
		loss      = fs.Float64("loss", 0, "beacon loss probability (executor=beacon)")
		maxLag    = fs.Int("lag", 2, "staleness bound (executor=stale)")
		traceOut  = fs.String("trace", "", "write a per-round CSV trace (lockstep smm/smi, first trial)")
		dotOut    = fs.String("dot", "", "write the final configuration as DOT (smm, first trial)")
		showViz   = fs.Bool("viz", false, "print a per-round ASCII timeline (lockstep smm/smi, first trial)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		logger.Print(err)
		return 2
	}
	fmt.Fprintf(stdout, "%s on %s %v, executor %s\n", *protocol, *topology, g, *executor)

	for trial := 0; trial < *trials; trial++ {
		opt := cli.TrialOptions{
			Protocol:  *protocol,
			Executor:  *executor,
			Seed:      *seed + int64(trial),
			MaxRounds: *maxRounds,
			Jitter:    *jitter,
			Loss:      *loss,
			MaxLag:    *maxLag,
		}
		var traceFile *os.File
		if trial == 0 && *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				logger.Print(err)
				return 1
			}
			opt.Trace = traceFile
		}
		if trial == 0 && *showViz {
			opt.Viz = stdout
		}
		summary, err := cli.RunTrial(g, opt, rng)
		if traceFile != nil {
			traceFile.Close()
		}
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Fprintln(stdout, " ", summary)
	}

	if *dotOut != "" && (*protocol == "smm" || *protocol == "hsuhuang") {
		if err := writeMatchingDOT(g, *protocol, *seed, *dotOut, stdout, logger); err != nil {
			return 1
		}
	}
	return 0
}

// writeMatchingDOT re-runs the first trial deterministically and renders
// its matching.
func writeMatchingDOT(g *graph.Graph, protocol string, seed int64, path string,
	stdout io.Writer, logger *log.Logger) error {

	var res selfstab.Result
	var matching []graph.Edge
	if protocol == "smm" {
		res, matching = selfstab.RunSMM(g, seed)
	} else {
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(selfstab.NewHsuHuang(), rand.New(rand.NewSource(seed)))
		l := selfstab.NewLockstep[core.Pointer](selfstab.NewHsuHuang(), cfg)
		res = l.Run(50 * g.N())
		matching = core.MatchingOf(cfg)
	}
	if !res.Stable {
		logger.Printf("dot: run did not stabilize; rendering last state")
	}
	f, err := os.Create(path)
	if err != nil {
		logger.Print(err)
		return err
	}
	defer f.Close()
	highlight := map[graph.Edge]bool{}
	for _, e := range matching {
		highlight[e] = true
	}
	if err := selfstab.WriteDOT(f, g, selfstab.DOTOptions{Name: "SMM", Highlight: highlight}); err != nil {
		logger.Print(err)
		return err
	}
	fmt.Fprintf(stdout, "  DOT written to %s\n", path)
	return nil
}
