// Command selfstab runs one self-stabilizing protocol on one topology
// under a chosen executor and reports convergence, with optional
// round-by-round trace output (CSV), an ASCII timeline, and DOT
// rendering of the final configuration.
//
// Examples:
//
//	selfstab -protocol smm -topology gnp -n 64 -trials 20
//	selfstab -protocol smi -topology disk -n 100 -executor beacon -jitter 0.2
//	selfstab -protocol smm-arbitrary -topology cycle -n 4 -max-rounds 50
//	selfstab -protocol smm -topology path -n 16 -trace trace.csv -viz
//	selfstab -protocol tree -topology lollipop -n 32
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"selfstab"
	"selfstab/internal/cli"
	"selfstab/internal/core"
	"selfstab/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("selfstab: ")
	var (
		protocol  = flag.String("protocol", "smm", strings.Join(cli.ProtocolNames, " | "))
		topology  = flag.String("topology", "gnp", strings.Join(cli.TopologyNames, " | "))
		n         = flag.Int("n", 32, "number of nodes")
		p         = flag.Float64("p", 0.1, "edge probability (gnp) / radius hint (disk)")
		seed      = flag.Int64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "independent trials (random initial states)")
		maxRounds = flag.Int("max-rounds", 0, "round limit (0 = protocol-derived default)")
		executor  = flag.String("executor", "lockstep", strings.Join(cli.ExecutorNames, " | "))
		jitter    = flag.Float64("jitter", 0.1, "beacon jitter fraction (executor=beacon)")
		loss      = flag.Float64("loss", 0, "beacon loss probability (executor=beacon)")
		maxLag    = flag.Int("lag", 2, "staleness bound (executor=stale)")
		traceOut  = flag.String("trace", "", "write a per-round CSV trace (lockstep smm/smi, first trial)")
		dotOut    = flag.String("dot", "", "write the final configuration as DOT (smm, first trial)")
		showViz   = flag.Bool("viz", false, "print a per-round ASCII timeline (lockstep smm/smi, first trial)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := cli.BuildTopology(*topology, *n, *p, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s %v, executor %s\n", *protocol, *topology, g, *executor)

	for trial := 0; trial < *trials; trial++ {
		opt := cli.TrialOptions{
			Protocol:  *protocol,
			Executor:  *executor,
			Seed:      *seed + int64(trial),
			MaxRounds: *maxRounds,
			Jitter:    *jitter,
			Loss:      *loss,
			MaxLag:    *maxLag,
		}
		var traceFile *os.File
		if trial == 0 && *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			opt.Trace = traceFile
		}
		if trial == 0 && *showViz {
			opt.Viz = os.Stdout
		}
		summary, err := cli.RunTrial(g, opt, rng)
		if traceFile != nil {
			traceFile.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", summary)
	}

	if *dotOut != "" && (*protocol == "smm" || *protocol == "hsuhuang") {
		writeMatchingDOT(g, *protocol, *seed, *dotOut)
	}
}

// writeMatchingDOT re-runs the first trial deterministically and renders
// its matching.
func writeMatchingDOT(g *graph.Graph, protocol string, seed int64, path string) {
	var res selfstab.Result
	var matching []graph.Edge
	if protocol == "smm" {
		res, matching = selfstab.RunSMM(g, seed)
	} else {
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(selfstab.NewHsuHuang(), rand.New(rand.NewSource(seed)))
		l := selfstab.NewLockstep[core.Pointer](selfstab.NewHsuHuang(), cfg)
		res = l.Run(50 * g.N())
		matching = core.MatchingOf(cfg)
	}
	if !res.Stable {
		log.Printf("dot: run did not stabilize; rendering last state")
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	highlight := map[graph.Edge]bool{}
	for _, e := range matching {
		highlight[e] = true
	}
	if err := selfstab.WriteDOT(f, g, selfstab.DOTOptions{Name: "SMM", Highlight: highlight}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  DOT written to %s\n", path)
}
