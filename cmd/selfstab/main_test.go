package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLockstepSMM(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "smm", "-topology", "path", "-n", "8", "-trials", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "smm on path") {
		t.Fatalf("stdout missing header:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "\n"); got < 3 {
		t.Fatalf("expected header + 2 trial summaries, got:\n%s", out.String())
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "nope", "-topology", "path", "-n", "4"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr = %q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "nope") {
		t.Fatalf("stderr = %q, want mention of the bad protocol", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunTraceAndViz(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.csv")
	var out, errOut strings.Builder
	code := run([]string{"-protocol", "smi", "-topology", "cycle", "-n", "6",
		"-trace", tracePath, "-viz"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if !strings.Contains(string(data), "round") {
		t.Fatalf("trace CSV missing header:\n%s", data)
	}
}

func TestRunDOTOutput(t *testing.T) {
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "m.dot")
	var out, errOut strings.Builder
	code := run([]string{"-protocol", "smm", "-topology", "cycle", "-n", "8", "-dot", dotPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatalf("dot file: %v", err)
	}
	if !strings.Contains(string(data), "graph") {
		t.Fatalf("DOT output missing graph header:\n%s", data)
	}
}
