package main

import (
	"bytes"
	"io"
	"testing"
)

// TestCLIDeterministicAcrossWorkers is the CLI half of the determinism
// acceptance check: `soak -seed S` writes byte-identical reports for
// any -workers value.
func TestCLIDeterministicAcrossWorkers(t *testing.T) {
	base := []string{"-seed", "7", "-out", "", "-sizes", "6", "-trials", "1", "-events", "3"}
	var want bytes.Buffer
	if code := run(append(base, "-workers", "1"), &want, io.Discard); code != 0 {
		t.Fatalf("exit %d:\n%s", code, want.String())
	}
	var got bytes.Buffer
	if code := run(append(base, "-workers", "4"), &got, io.Discard); code != 0 {
		t.Fatalf("exit %d:\n%s", code, got.String())
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("-workers changed the report:\n--- workers=1\n%s--- workers=4\n%s",
			want.String(), got.String())
	}
}

func TestCLIUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-sizes", "eight"},
		{"-models", "quantum"},
		{"-protocols", "SMM,,SMI"},
		{"-nosuchflag"},
	} {
		var stderr bytes.Buffer
		if code := run(args, io.Discard, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr %q)", args, code, stderr.String())
		}
	}
}
