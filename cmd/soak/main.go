// Command soak runs randomized fault-injection campaigns over the
// protocol/executor matrix and verifies recovery per fault epoch:
// closure, re-convergence within the paper's bound, legitimacy of the
// reached configuration, and containment. Failing schedules are shrunk
// to minimal replayable repros and written as JSON artifacts.
//
// For a fixed -seed the report bytes are identical across runs and
// across -workers values.
//
// Examples:
//
//	soak -seed 1                   # default campaign, artifacts in soak-out/
//	soak -seed 1 -quick            # CI-sized campaign
//	soak -models beacon -sizes 16  # one model, one size
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"selfstab/internal/soak"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, the
// report goes to stdout, diagnostics to stderr, and the process exit
// code is returned (0 ok, 1 failing cells, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 1, "campaign seed")
		quick     = fs.Bool("quick", false, "CI-sized campaign (one size, one trial)")
		protocols = fs.String("protocols", "", "comma-separated protocols (default SMM,SMI)")
		models    = fs.String("models", "", "comma-separated models (default lockstep,runtime,beacon)")
		sizes     = fs.String("sizes", "", "comma-separated node counts (default 8,12)")
		trials    = fs.Int("trials", 0, "trials per (protocol, model, size) cell (0 = default)")
		events    = fs.Int("events", 0, "fault events per schedule (0 = default)")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = all CPUs; results are identical for any value)")
		outDir    = fs.String("out", "soak-out", "artifact directory for failing schedules (empty = don't write)")
		shrink    = fs.Int("shrink", 0, "shrink replay budget per failing cell (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opt := soak.Options{
		Seed:       *seed,
		Trials:     *trials,
		Events:     *events,
		Workers:    *workers,
		OutDir:     *outDir,
		ShrinkRuns: *shrink,
	}
	if *quick {
		opt.Sizes = []int{8}
		opt.Trials = 1
	}
	var err error
	if opt.Protocols, err = splitList(*protocols); err != nil {
		fmt.Fprintf(stderr, "soak: -protocols: %v\n", err)
		return 2
	}
	if opt.Models, err = splitList(*models); err != nil {
		fmt.Fprintf(stderr, "soak: -models: %v\n", err)
		return 2
	}
	if *sizes != "" {
		opt.Sizes, err = parseSizes(*sizes)
		if err != nil {
			fmt.Fprintf(stderr, "soak: -sizes: %v\n", err)
			return 2
		}
	}
	failures, err := soak.Run(opt, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// splitList parses a comma-separated list, mapping "" to nil (use the
// campaign defaults).
func splitList(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty element in %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}

// parseSizes parses a comma-separated list of node counts.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
