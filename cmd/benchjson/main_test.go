package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: selfstab
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLarge_SMMSparse1024           	       3	    946596 ns/op	    5344 B/op	      26 allocs/op
BenchmarkLarge_SMISparse1024           	       3	    292034 ns/op	    1472 B/op	       9 allocs/op
PASS
ok  	selfstab	0.478s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFoo-8   \t 300\t  4523 ns/op\t  128 B/op\t  3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkFoo-8" || b.Iters != 300 || b.NsOp != 4523 || b.BOp != 128 || b.AllocsOp != 3 {
		t.Fatalf("parsed %+v", b)
	}
	if _, ok := parseBenchLine("BenchmarkBare"); ok {
		t.Fatal("accepted result-free line")
	}
}

func TestMergeAppendsRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	var out bytes.Buffer
	if code := run([]string{"-label", "before", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-label", "after", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 || f.Runs[0].Label != "before" || f.Runs[1].Label != "after" {
		t.Fatalf("runs: %+v", f.Runs)
	}
	if len(f.Runs[1].Benchmarks) != 2 || f.Runs[1].Goos != "linux" || f.Runs[1].CPU == "" {
		t.Fatalf("run: %+v", f.Runs[1])
	}
	// Raw lines stay benchstat-consumable: header first, then results.
	if !strings.HasPrefix(f.Runs[0].Raw[0], "goos:") || !strings.HasPrefix(f.Runs[0].Raw[2], "cpu:") {
		t.Fatalf("raw: %v", f.Runs[0].Raw)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	var out bytes.Buffer
	if code := run([]string{"-label", "base", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatal("merge failed")
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same numbers: no regression.
	out.Reset()
	if code := run([]string{"-diff", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("clean diff exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("diff output: %s", out.String())
	}
	// 10x slower: regression reported with non-zero exit.
	slow := strings.ReplaceAll(sampleBench, "946596 ns/op", "9465960 ns/op")
	out.Reset()
	if code := run([]string{"-diff", path}, strings.NewReader(slow), &out, os.Stderr); code != 1 {
		t.Fatalf("regressed diff exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("diff output: %s", out.String())
	}
}

func TestNoBenchmarksOnStdin(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &out, &out); code != 2 {
		t.Fatalf("exit %d", code)
	}
}
