package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: selfstab
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLarge_SMMSparse1024           	       3	    946596 ns/op	    5344 B/op	      26 allocs/op
BenchmarkLarge_SMISparse1024           	       3	    292034 ns/op	    1472 B/op	       9 allocs/op
PASS
ok  	selfstab	0.478s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFoo-8   \t 300\t  4523 ns/op\t  128 B/op\t  3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkFoo-8" || b.Iters != 300 || b.NsOp != 4523 || b.BOp != 128 || b.AllocsOp != 3 {
		t.Fatalf("parsed %+v", b)
	}
	if _, ok := parseBenchLine("BenchmarkBare"); ok {
		t.Fatal("accepted result-free line")
	}
}

func TestMergeAppendsRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	var out bytes.Buffer
	if code := run([]string{"-label", "before", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-label", "after", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 || f.Runs[0].Label != "before" || f.Runs[1].Label != "after" {
		t.Fatalf("runs: %+v", f.Runs)
	}
	if len(f.Runs[1].Benchmarks) != 2 || f.Runs[1].Goos != "linux" || f.Runs[1].CPU == "" {
		t.Fatalf("run: %+v", f.Runs[1])
	}
	// Raw lines stay benchstat-consumable: header first, then results.
	if !strings.HasPrefix(f.Runs[0].Raw[0], "goos:") || !strings.HasPrefix(f.Runs[0].Raw[2], "cpu:") {
		t.Fatalf("raw: %v", f.Runs[0].Raw)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	var out bytes.Buffer
	if code := run([]string{"-label", "base", "-merge", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatal("merge failed")
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same numbers: no regression.
	out.Reset()
	if code := run([]string{"-diff", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("clean diff exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("diff output: %s", out.String())
	}
	// 10x slower: regression reported with non-zero exit.
	slow := strings.ReplaceAll(sampleBench, "946596 ns/op", "9465960 ns/op")
	out.Reset()
	if code := run([]string{"-diff", path}, strings.NewReader(slow), &out, os.Stderr); code != 1 {
		t.Fatalf("regressed diff exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("diff output: %s", out.String())
	}
}

// writeBaseline records sampleBench as the last run of a fresh baseline
// file and returns its path.
func writeBaseline(t *testing.T) string {
	t.Helper()
	return writeBaselineFrom(t, sampleBench)
}

// writeBaselineFrom records the given bench output as the last run of a
// fresh baseline file and returns its path.
func writeBaselineFrom(t *testing.T, bench string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	var out bytes.Buffer
	if code := run([]string{"-label", "base", "-merge", path}, strings.NewReader(bench), &out, os.Stderr); code != 0 {
		t.Fatal("merge failed")
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateThreshold(t *testing.T) {
	path := writeBaseline(t)
	// Identical numbers pass.
	var out bytes.Buffer
	if code := run([]string{"-gate", path}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("clean gate exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "gate passed") {
		t.Fatalf("gate output: %s", out.String())
	}
	// +8% stays under the 10% default.
	under := strings.ReplaceAll(sampleBench, "946596 ns/op", "1022324 ns/op")
	out.Reset()
	if code := run([]string{"-gate", path}, strings.NewReader(under), &out, os.Stderr); code != 0 {
		t.Fatalf("+8%% gate exited %d: %s", code, out.String())
	}
	// +12% fails.
	over := strings.ReplaceAll(sampleBench, "946596 ns/op", "1060187 ns/op")
	out.Reset()
	if code := run([]string{"-gate", path}, strings.NewReader(over), &out, os.Stderr); code != 1 {
		t.Fatalf("+12%% gate exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "GATE FAILED") || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("gate output: %s", out.String())
	}
	// An explicit -threshold overrides the gate default.
	out.Reset()
	if code := run([]string{"-gate", path, "-threshold", "1.5"}, strings.NewReader(over), &out, os.Stderr); code != 0 {
		t.Fatalf("loose-threshold gate exited %d: %s", code, out.String())
	}
}

func TestGatePinFilter(t *testing.T) {
	path := writeBaseline(t)
	// A regression outside the pinned set is reported but does not fail.
	over := strings.ReplaceAll(sampleBench, "946596 ns/op", "9465960 ns/op") // SMMSparse regresses 10x
	var out bytes.Buffer
	if code := run([]string{"-gate", path, "-pin", "SMISparse"}, strings.NewReader(over), &out, os.Stderr); code != 0 {
		t.Fatalf("unpinned regression exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "(regressed, unpinned)") {
		t.Fatalf("gate output: %s", out.String())
	}
	// The same regression inside the pinned set fails.
	out.Reset()
	if code := run([]string{"-gate", path, "-pin", "SMMSparse"}, strings.NewReader(over), &out, os.Stderr); code != 1 {
		t.Fatalf("pinned regression exited %d: %s", code, out.String())
	}
	// A bad pin regexp is a usage error, not a pass.
	out.Reset()
	if code := run([]string{"-gate", path, "-pin", "("}, strings.NewReader(sampleBench), &out, &out); code != 2 {
		t.Fatalf("bad pin exited %d", code)
	}
}

func TestGateAllocsZeroBaseline(t *testing.T) {
	// A 0-alloc baseline is a structural claim: ANY allocs/op increase
	// fails the gate even when ns/op is unchanged.
	zero := strings.ReplaceAll(sampleBench, "26 allocs/op", "0 allocs/op")
	path := writeBaselineFrom(t, zero)
	var out bytes.Buffer
	if code := run([]string{"-gate", path}, strings.NewReader(zero), &out, os.Stderr); code != 0 {
		t.Fatalf("clean 0-alloc gate exited %d: %s", code, out.String())
	}
	leak := strings.ReplaceAll(zero, "0 allocs/op", "1 allocs/op")
	out.Reset()
	if code := run([]string{"-gate", path}, strings.NewReader(leak), &out, os.Stderr); code != 1 {
		t.Fatalf("0→1 allocs gate exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (allocs/op)") || !strings.Contains(out.String(), "GATE FAILED") {
		t.Fatalf("gate output: %s", out.String())
	}
}

func TestGateAllocsThreshold(t *testing.T) {
	path := writeBaseline(t)
	// 26 → 28 allocs/op is +7.7%, under the 10% gate default: passes.
	under := strings.ReplaceAll(sampleBench, "26 allocs/op", "28 allocs/op")
	var out bytes.Buffer
	if code := run([]string{"-gate", path}, strings.NewReader(under), &out, os.Stderr); code != 0 {
		t.Fatalf("+8%% allocs gate exited %d: %s", code, out.String())
	}
	// 26 → 30 is +15%: fails even with ns/op flat.
	over := strings.ReplaceAll(sampleBench, "26 allocs/op", "30 allocs/op")
	out.Reset()
	if code := run([]string{"-gate", path}, strings.NewReader(over), &out, os.Stderr); code != 1 {
		t.Fatalf("+15%% allocs gate exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (allocs/op)") {
		t.Fatalf("gate output: %s", out.String())
	}
	// The pin filter applies to allocs regressions like ns/op ones.
	out.Reset()
	if code := run([]string{"-gate", path, "-pin", "SMISparse"}, strings.NewReader(over), &out, os.Stderr); code != 0 {
		t.Fatalf("unpinned allocs regression exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "(regressed, unpinned)") {
		t.Fatalf("gate output: %s", out.String())
	}
}

func TestGateMissingBaseline(t *testing.T) {
	// No file at all: pass with a bootstrap notice.
	var out bytes.Buffer
	missing := filepath.Join(t.TempDir(), "nope.json")
	if code := run([]string{"-gate", missing}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("missing baseline exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "bootstraps") {
		t.Fatalf("gate output: %s", out.String())
	}
	// Present but empty (zero runs): same bootstrap pass.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-gate", empty}, strings.NewReader(sampleBench), &out, os.Stderr); code != 0 {
		t.Fatalf("empty baseline exited %d: %s", code, out.String())
	}
	// Corrupt baseline is a hard error — the gate must not silently pass.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"runs":`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-gate", bad}, strings.NewReader(sampleBench), &out, &out); code != 2 {
		t.Fatalf("corrupt baseline exited %d: %s", code, out.String())
	}
}

func TestGateNewAndMissingBenchmarks(t *testing.T) {
	path := writeBaseline(t)
	// A benchmark absent from the baseline is noted, never failed — and a
	// pinned baseline benchmark missing from the fresh run only warns.
	fresh := strings.ReplaceAll(sampleBench, "BenchmarkLarge_SMMSparse1024", "BenchmarkShard1M_SMMSparse8")
	var out bytes.Buffer
	if code := run([]string{"-gate", path}, strings.NewReader(fresh), &out, os.Stderr); code != 0 {
		t.Fatalf("new benchmark exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "(new)") {
		t.Fatalf("gate output lacks (new): %s", out.String())
	}
	if !strings.Contains(out.String(), "missing from the fresh run") {
		t.Fatalf("gate output lacks missing warning: %s", out.String())
	}
}

func TestNoBenchmarksOnStdin(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &out, &out); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestTrendReport(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-trend", "testdata/trend_1.json", "testdata/trend_2.json"},
		strings.NewReader(""), &out, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "3 benchmark(s) across 3 run(s) in 2 file(s)") {
		t.Fatalf("header wrong:\n%s", got)
	}
	// The frontier benchmark spans both files: 1000 -> 800 (-20%) in
	// trend_1 then 800 -> 1200 (+50%) stepping into trend_2, with the
	// allocs history carried along.
	for _, want := range []string{
		"BenchmarkFrontier_Ring4096",
		` -20.0%`,
		` +50.0%`,
		`trend_2.json[0] "sharded"`,
		"2 allocs/op",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	// First observation of a series has no delta.
	if !strings.Contains(got, "      -") {
		t.Fatalf("missing delta placeholder for first points:\n%s", got)
	}
	// A benchmark appearing only in the later file still gets a series.
	if !strings.Contains(got, "BenchmarkMillion_Sharded") {
		t.Fatalf("late-appearing benchmark dropped:\n%s", got)
	}
}

func TestTrendGlobsWhenNoArgs(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile("testdata/trend_1.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	var out bytes.Buffer
	if code := run([]string{"-trend"}, strings.NewReader(""), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BENCH_1.json[1]") {
		t.Fatalf("glob did not pick up BENCH_1.json:\n%s", out.String())
	}
}

// TestTrendEmptyHistory pins the zero-runs edge: files that parse but
// record no runs produce a notice instead of a misleading
// "0 benchmark(s) across 0 run(s)" report, and still exit 0 — the
// trend is a report, never a gate.
func TestTrendEmptyHistory(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "BENCH_empty.json")
	if err := os.WriteFile(empty, []byte(`{"runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-trend", empty}, strings.NewReader(""), &out, &errw); code != 0 {
		t.Fatalf("empty history: exit %d\n%s", code, errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("empty history wrote a report:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "1 file(s) hold no runs") {
		t.Fatalf("missing empty-history notice: %s", errw.String())
	}
}

// TestTrendSingleEntry pins the one-observation edge: a single run
// yields a series with the "-" delta placeholder and no Δ% row, and a
// zero-ns/op predecessor never divides (the next delta stays "-").
func TestTrendSingleEntry(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "BENCH_single.json")
	body := `{"runs":[{"label":"only","benchmarks":[
		{"name":"BenchmarkOne","ns_op":1000,"b_op":0,"allocs_op":0},
		{"name":"BenchmarkZero","ns_op":0,"b_op":0,"allocs_op":0}]}]}`
	if err := os.WriteFile(single, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-trend", single}, strings.NewReader(""), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "2 benchmark(s) across 1 run(s) in 1 file(s)") {
		t.Fatalf("header wrong:\n%s", got)
	}
	if !strings.Contains(got, "      -") {
		t.Fatalf("missing delta placeholder:\n%s", got)
	}
	if strings.Contains(got, "%") {
		t.Fatalf("single entry grew a spurious delta row:\n%s", got)
	}

	// A second run whose predecessor recorded 0 ns/op must not divide:
	// BenchmarkZero's second point keeps the placeholder.
	followup := `{"runs":[
		{"label":"only","benchmarks":[{"name":"BenchmarkZero","ns_op":0,"b_op":0,"allocs_op":0}]},
		{"label":"next","benchmarks":[{"name":"BenchmarkZero","ns_op":500,"b_op":0,"allocs_op":0}]}]}`
	if err := os.WriteFile(single, []byte(followup), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-trend", single}, strings.NewReader(""), &out, os.Stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "%") {
		t.Fatalf("zero-ns/op predecessor produced a delta:\n%s", out.String())
	}
}

func TestTrendErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-trend", "testdata/nope.json"}, strings.NewReader(""), &out, &errw); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	errw.Reset()
	dir := t.TempDir()
	cwd, _ := os.Getwd()
	os.Chdir(dir)
	defer os.Chdir(cwd)
	if code := run([]string{"-trend"}, strings.NewReader(""), &out, &errw); code != 2 {
		t.Fatalf("empty glob: exit %d", code)
	}
	if !strings.Contains(errw.String(), "no baseline files") {
		t.Fatalf("missing empty-glob message: %s", errw.String())
	}
}
