// Command benchjson converts `go test -bench` output into the committed
// benchmark baselines (BENCH_1.json, BENCH_2.json, ...) and checks
// fresh runs against them.
//
// The JSON file holds an ordered list of runs, each with the parsed
// ns/op, B/op and allocs/op per benchmark plus the raw benchfmt lines,
// so `jq -r '.runs[].raw[]' BENCH_2.json | benchstat old.txt -` style
// pipelines keep working: the raw lines are exactly what benchstat
// consumes.
//
// Modes:
//
//	benchjson -label after -merge BENCH_2.json < bench.txt   # append a run
//	benchjson -diff BENCH_2.json < bench.txt                 # regression warning
//	benchjson -gate base.json -pin '^BenchmarkLarge' < bench.txt  # blocking gate
//	benchjson -trend BENCH_1.json BENCH_2.json               # history report
//	benchjson -trend                                         # ditto, globbing BENCH_*.json
//
// The diff mode compares the fresh run on stdin against the most recent
// run in the file and exits non-zero when any shared benchmark regressed
// by more than -threshold (default 1.25× ns/op) — a loose advisory
// signal for cross-machine baselines.
//
// The gate mode is the blocking CI guard: it fails (exit 1) when any
// benchmark matching -pin regresses by more than -threshold (default
// 1.10× ns/op in this mode) against the baseline's most recent run, or
// regresses on allocs/op — any increase from a 0-alloc baseline (the
// statically pinned steady state of the shard kernels) is a hard fail,
// and a nonzero baseline fails past the same proportional threshold.
// Because it is blocking, it is forgiving about everything that is not
// a measured regression: a missing or empty baseline passes with a
// notice (the first run on a runner bootstraps the baseline), and
// benchmarks absent from the baseline are reported as new, not failed.
// CI measures the baseline on the same runner in the same job (bench
// main, then bench the candidate), so the ratio compares like with
// like — committed cross-machine baselines stay with -diff.
//
// The trend mode reads nothing from stdin: it walks every run of every
// named baseline file (or all BENCH_*.json in the working directory
// when no files are named) in order and prints, per benchmark, the
// full ns/op trajectory with the step-over-step delta plus the B/op
// and allocs/op history — the long view the pairwise modes cannot give.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Run is one benchmark session.
type Run struct {
	Label      string  `json:"label"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
	// Raw preserves the benchfmt lines (header + results) verbatim for
	// benchstat consumption.
	Raw []string `json:"raw"`
}

// File is the schema of BENCH_1.json.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(errw)
	label := fs.String("label", "run", "label recorded for the new run")
	merge := fs.String("merge", "", "existing JSON file to append the run to (missing file starts fresh)")
	diff := fs.String("diff", "", "JSON baseline to diff the stdin run against instead of emitting JSON")
	gate := fs.String("gate", "", "JSON baseline to gate the stdin run against (blocking mode: exit 1 on pinned regressions)")
	pin := fs.String("pin", ".", "regexp of benchmark names the -gate mode enforces; others are informational")
	threshold := fs.Float64("threshold", 1.25, "ns/op ratio above which a regression is reported (default 1.10 under -gate)")
	trend := fs.Bool("trend", false, "report the per-benchmark history across the named JSON files (default: all BENCH_*.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *trend {
		return trendRuns(fs.Args(), out, errw)
	}
	// The two modes want different default strictness: -diff is a loose
	// advisory across machines, -gate a tight same-runner block. Apply
	// the gate default only when the caller did not set -threshold.
	thresholdSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			thresholdSet = true
		}
	})
	if *gate != "" && !thresholdSet {
		*threshold = 1.10
	}
	newRun, err := parseRun(in, *label)
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}
	if len(newRun.Benchmarks) == 0 {
		fmt.Fprintln(errw, "benchjson: no benchmark lines on stdin")
		return 2
	}
	if *gate != "" {
		return gateRuns(*gate, newRun, *threshold, *pin, out, errw)
	}
	if *diff != "" {
		return diffRuns(*diff, newRun, *threshold, out, errw)
	}
	var f File
	if *merge != "" {
		if err := readFile(*merge, &f); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(errw, "benchjson: %v\n", err)
			return 2
		}
	}
	f.Runs = append(f.Runs, newRun)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}
	return 0
}

func readFile(path string, f *File) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		// A truncated-but-present file (e.g. `foo > BENCH_1.json` racing
		// the read) starts a fresh baseline rather than failing the run.
		return nil
	}
	if err := json.Unmarshal(data, f); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

// parseRun reads `go test -bench` output and collects result lines plus
// the goos/goarch/cpu header.
func parseRun(in io.Reader, label string) (Run, error) {
	r := Run{Label: label}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			r.Raw = append(r.Raw, line)
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			r.Raw = append(r.Raw, line)
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			r.Raw = append(r.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r.Benchmarks = append(r.Benchmarks, b)
			r.Raw = append(r.Raw, line)
		}
	}
	return r, sc.Err()
}

// parseBenchLine parses one benchfmt result line, e.g.
//
//	BenchmarkFoo-8   	 300	  4523 ns/op	  128 B/op	  3 allocs/op
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iters = iters
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Bench{}, false
			}
			seen = true
		case "B/op":
			b.BOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return b, seen
}

// gateRuns is the blocking regression gate: newRun vs the last run in
// path, failing only on pinned benchmarks that regressed past the
// threshold. Missing baselines pass (they bootstrap), new benchmarks
// are noted, and pinned benchmarks that disappeared from the fresh run
// are warned about but do not fail (renames land with their own PR).
func gateRuns(path string, newRun Run, threshold float64, pin string, out, errw io.Writer) int {
	pinRe, err := regexp.Compile(pin)
	if err != nil {
		fmt.Fprintf(errw, "benchjson: -pin: %v\n", err)
		return 2
	}
	var f File
	if err := readFile(path, &f); err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(out, "benchjson gate: no baseline at %s; passing (first run bootstraps the baseline)\n", path)
			return 0
		}
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}
	if len(f.Runs) == 0 {
		fmt.Fprintf(out, "benchjson gate: %s holds no runs; passing (first run bootstraps the baseline)\n", path)
		return 0
	}
	base := f.Runs[len(f.Runs)-1]
	old := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Fprintf(out, "benchjson gate vs %q (last run of %s), threshold %.2fx ns/op, pin %q\n", base.Label, path, threshold, pin)
	fmt.Fprintf(out, "%-42s %14s %14s %8s %16s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs old→new")
	regressed := 0
	fresh := make(map[string]bool, len(newRun.Benchmarks))
	for _, nb := range newRun.Benchmarks {
		fresh[nb.Name] = true
		ob, ok := old[nb.Name]
		if !ok {
			fmt.Fprintf(out, "%-42s %14s %14.0f %8s %16s  (new)\n", nb.Name, "-", nb.NsOp, "-", fmt.Sprintf("-→%d", nb.AllocsOp))
			continue
		}
		ratio := 0.0
		if ob.NsOp > 0 {
			ratio = nb.NsOp / ob.NsOp
		}
		// allocs/op is gated alongside ns/op: a 0-alloc baseline is a
		// structural claim (the noalloc analyzer pins it statically), so
		// ANY increase from 0 fails; nonzero baselines get the same
		// proportional threshold as ns/op.
		allocsBad := (ob.AllocsOp == 0 && nb.AllocsOp > 0) ||
			(ob.AllocsOp > 0 && float64(nb.AllocsOp) > float64(ob.AllocsOp)*threshold)
		mark := ""
		if ratio > threshold || allocsBad {
			if pinRe.MatchString(nb.Name) {
				mark = "  REGRESSION"
				if allocsBad && ratio <= threshold {
					mark = "  REGRESSION (allocs/op)"
				}
				regressed++
			} else {
				mark = "  (regressed, unpinned)"
			}
		}
		fmt.Fprintf(out, "%-42s %14.0f %14.0f %7.2fx %16s%s\n",
			nb.Name, ob.NsOp, nb.NsOp, ratio, fmt.Sprintf("%d→%d", ob.AllocsOp, nb.AllocsOp), mark)
	}
	for _, ob := range base.Benchmarks {
		if !fresh[ob.Name] && pinRe.MatchString(ob.Name) {
			fmt.Fprintf(out, "%-42s missing from the fresh run (was %.0f ns/op)\n", ob.Name, ob.NsOp)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(out, "GATE FAILED: %d pinned benchmark(s) regressed beyond %.2fx\n", regressed, threshold)
		return 1
	}
	fmt.Fprintln(out, "gate passed")
	return 0
}

// trendPoint is one observation of one benchmark in the history walk.
type trendPoint struct {
	source string // "BENCH_2.json[1] \"after\""
	bench  Bench
}

// trendRuns prints the full per-benchmark history across the named
// baseline files, in file order then run order. With no files it globs
// BENCH_*.json in the working directory (sorted), so the committed
// baselines read as a progress report. Exit 2 on unreadable input,
// 0 otherwise — the trend is a report, never a gate.
func trendRuns(paths []string, out, errw io.Writer) int {
	if len(paths) == 0 {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			fmt.Fprintf(errw, "benchjson: %v\n", err)
			return 2
		}
		sort.Strings(matches)
		paths = matches
	}
	if len(paths) == 0 {
		fmt.Fprintln(errw, "benchjson: -trend found no baseline files")
		return 2
	}
	series := map[string][]trendPoint{}
	var order []string // first-appearance order of benchmark names
	runs := 0
	for _, path := range paths {
		var f File
		if err := readFile(path, &f); err != nil {
			fmt.Fprintf(errw, "benchjson: %v\n", err)
			return 2
		}
		for i, r := range f.Runs {
			runs++
			src := fmt.Sprintf("%s[%d] %q", filepath.Base(path), i, r.Label)
			for _, b := range r.Benchmarks {
				if _, seen := series[b.Name]; !seen {
					order = append(order, b.Name)
				}
				series[b.Name] = append(series[b.Name], trendPoint{source: src, bench: b})
			}
		}
	}
	if runs == 0 {
		fmt.Fprintf(errw, "benchjson: -trend: %d file(s) hold no runs\n", len(paths))
		return 0
	}
	fmt.Fprintf(out, "benchjson trend: %d benchmark(s) across %d run(s) in %d file(s)\n",
		len(order), runs, len(paths))
	for _, name := range order {
		pts := series[name]
		fmt.Fprintf(out, "\n%s\n", name)
		prev := 0.0
		for i, pt := range pts {
			delta := "      -"
			if i > 0 && prev > 0 {
				delta = fmt.Sprintf("%+6.1f%%", (pt.bench.NsOp-prev)/prev*100)
			}
			fmt.Fprintf(out, "  %-34s %14.0f ns/op %s %10d B/op %6d allocs/op\n",
				pt.source, pt.bench.NsOp, delta, pt.bench.BOp, pt.bench.AllocsOp)
			prev = pt.bench.NsOp
		}
	}
	return 0
}

// diffRuns compares newRun against the last run recorded in path.
func diffRuns(path string, newRun Run, threshold float64, out, errw io.Writer) int {
	var f File
	if err := readFile(path, &f); err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}
	if len(f.Runs) == 0 {
		fmt.Fprintf(errw, "benchjson: %s holds no runs\n", path)
		return 2
	}
	base := f.Runs[len(f.Runs)-1]
	old := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Fprintf(out, "benchjson diff vs %q (last run of %s), threshold %.2fx ns/op\n", base.Label, path, threshold)
	fmt.Fprintf(out, "%-42s %14s %14s %8s %16s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs old→new")
	regressed := 0
	for _, nb := range newRun.Benchmarks {
		ob, ok := old[nb.Name]
		if !ok {
			fmt.Fprintf(out, "%-42s %14s %14.0f %8s %16s\n", nb.Name, "(new)", nb.NsOp, "-", fmt.Sprintf("-→%d", nb.AllocsOp))
			continue
		}
		ratio := 0.0
		if ob.NsOp > 0 {
			ratio = nb.NsOp / ob.NsOp
		}
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Fprintf(out, "%-42s %14.0f %14.0f %7.2fx %16s%s\n",
			nb.Name, ob.NsOp, nb.NsOp, ratio, fmt.Sprintf("%d→%d", ob.AllocsOp, nb.AllocsOp), mark)
	}
	if regressed > 0 {
		fmt.Fprintf(out, "%d benchmark(s) regressed beyond %.2fx\n", regressed, threshold)
		return 1
	}
	fmt.Fprintln(out, "no regressions")
	return 0
}
