// Command selfstabd is the long-lived self-stabilization service: an
// HTTP/JSON daemon hosting many tenant graphs, each running one of the
// paper's protocols (SMM maximal matching, SMI maximal independent set)
// under streaming topology mutations and fault injection.
//
//	selfstabd -data /var/lib/selfstab -addr 127.0.0.1:8080
//
// Robustness contract:
//
//   - Every mutation is journaled durably before it is applied: the
//     event loop group-commits each batch with a single fsync issued
//     before the first apply, so a crash at any instant replays to the
//     exact pre-crash state. The journal is segmented; checkpoints
//     retire segments the snapshot covers, bounding replay.
//   - Overload degrades, never collapses: per-tenant token buckets
//     answer 429 and bounded queues answer 503, both with Retry-After.
//   - A panic inside one tenant quarantines that tenant (503) while the
//     rest of the daemon keeps serving.
//   - SIGTERM/SIGINT drains in-flight epochs, flushes snapshots, and
//     exits 0; a second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfstab/internal/service"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is the daemon body, factored out of main so tests can drive the
// full lifecycle — flags, listen, serve, signal, drain — in-process.
//
// It is the process entry point in all but name, so it owns the drain
// context's root.
//
//selfstab:ctx-root
func run(args []string, out, errw io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("selfstabd", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "", "data directory for journals and snapshots (required)")
	queue := fs.Int("queue", 0, "per-tenant command queue depth (0 = default)")
	rate := fs.Float64("rate", 0, "per-tenant sustained requests/sec (0 = default)")
	burst := fs.Int("burst", 0, "per-tenant burst allowance (0 = default)")
	snapEvery := fs.Int("snapshot-every", 0, "checkpoint every N mutations (0 = default, negative disables)")
	slice := fs.Int("slice", 0, "rounds per scheduling slice inside an epoch (0 = default)")
	shards := fs.Int("shards", 0, "executor shards per tenant (0 or 1 = single-threaded)")
	maxTenants := fs.Int("max-tenants", 0, "tenant cap (0 = default)")
	commitInterval := fs.Duration("commit-interval", 0, "group-commit window a lone mutation may wait for batch-mates (0 = default 200µs, negative disables)")
	segmentBytes := fs.Int64("segment-bytes", 0, "journal segment rotation threshold in bytes (0 = default 4MiB)")
	fsyncEach := fs.Bool("fsync-each", false, "fsync every journal entry individually instead of group-committing batches")
	chaos := fs.Bool("chaos", false, "enable the chaos_panic fault-injection op")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget before hard kill")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *data == "" {
		fmt.Fprintln(errw, "selfstabd: -data is required")
		fs.Usage()
		return 2
	}

	svc, err := service.Open(service.Options{
		DataDir:        *data,
		QueueDepth:     *queue,
		RatePerSec:     *rate,
		Burst:          *burst,
		SnapshotEvery:  *snapEvery,
		ConvergeSlice:  *slice,
		Shards:         *shards,
		MaxTenants:     *maxTenants,
		CommitInterval: *commitInterval,
		SegmentBytes:   *segmentBytes,
		FsyncEach:      *fsyncEach,
		EnableChaos:    *chaos,
	})
	if err != nil {
		fmt.Fprintf(errw, "selfstabd: open service: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(errw, "selfstabd: listen: %v\n", err)
		svc.Kill()
		return 1
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(out, "selfstabd listening on http://%s (data %s)\n", ln.Addr(), *data)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(errw, "selfstabd: serve: %v\n", err)
		svc.Kill()
		return 1
	case s := <-sig:
		fmt.Fprintf(out, "selfstabd: %v received, draining (budget %s; signal again to abort)\n", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(out, "selfstabd: second %v, aborting drain\n", s)
			cancel()
		case <-ctx.Done():
		}
	}()

	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(errw, "selfstabd: http shutdown: %v\n", err)
	}
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintf(errw, "selfstabd: drain: %v\n", err)
		return 1
	}
	fmt.Fprintln(out, "selfstabd: drained cleanly")
	return 0
}
