package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is an io.Writer safe for the daemon goroutine and the test to
// share.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon in-process on a free port and returns its
// base URL, the signal channel, and the exit-code channel.
func startDaemon(t *testing.T, dataDir string, extra ...string) (string, chan os.Signal, chan int, *syncBuf) {
	t.Helper()
	out := &syncBuf{}
	sig := make(chan os.Signal, 2)
	done := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	go func() { done <- run(args, out, out, sig) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "listening on http://") {
			line := s[strings.Index(s, "listening on http://")+len("listening on "):]
			return strings.Fields(line)[0], sig, done, out
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited early with code %d: %s", code, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never started listening: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body, outv any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if outv != nil && len(data) > 0 {
		if err := json.Unmarshal(data, outv); err != nil {
			t.Fatalf("POST %s: decode %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonLifecycle exercises the full binary path: boot, serve a
// tenant over real TCP, drain on SIGTERM, and recover the tenant on
// restart from the same data directory.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	base, sig, done, out := startDaemon(t, dir)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	create := map[string]any{
		"id": "ring", "protocol": "smm", "n": 6, "seed": 11,
		"edges": [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
	}
	if code := postJSON(t, base+"/v1/tenants", create, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: %d", code)
	}
	var res struct {
		Seq       int64 `json:"seq"`
		Converged bool  `json:"converged"`
	}
	mut := map[string]any{"op": "corrupt", "nodes": []int{1, 4}}
	if code := postJSON(t, base+"/v1/tenants/ring/mutations", mut, &res); code != http.StatusOK || !res.Converged {
		t.Fatalf("mutation: code %d res %+v", code, res)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit code %d: %s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM: %s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation: %s", out.String())
	}

	// Restart from the same directory: the tenant and its sequence
	// number must come back from the journal.
	base2, sig2, done2, out2 := startDaemon(t, dir)
	var st struct {
		Seq       int64 `json:"seq"`
		Converged bool  `json:"converged"`
	}
	resp2, err := http.Get(base2 + "/v1/tenants/ring")
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	data, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after restart: %d %s", resp2.StatusCode, data)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Seq != res.Seq || !st.Converged {
		t.Fatalf("recovered tenant lost state: %+v (want seq %d)", st, res.Seq)
	}
	sig2 <- syscall.SIGTERM
	select {
	case code := <-done2:
		if code != 0 {
			t.Fatalf("second daemon exit code %d: %s", code, out2.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second daemon did not drain")
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	out := &syncBuf{}
	if code := run([]string{"-addr", "127.0.0.1:0"}, out, out, make(chan os.Signal)); code != 2 {
		t.Fatalf("missing -data: exit %d, want 2", code)
	}
	if !strings.Contains(out.String(), "-data is required") {
		t.Fatalf("missing usage hint: %s", out.String())
	}
	out2 := &syncBuf{}
	if code := run([]string{"-definitely-not-a-flag"}, out2, out2, make(chan os.Signal)); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestDaemonBadListenAddr(t *testing.T) {
	out := &syncBuf{}
	code := run([]string{"-data", t.TempDir(), "-addr", "256.256.256.256:1"}, out, out, make(chan os.Signal))
	if code != 1 {
		t.Fatalf("bad addr: exit %d, want 1 (%s)", code, out.String())
	}
}

func TestDaemonChaosFlagGates(t *testing.T) {
	dir := t.TempDir()
	base, sig, done, _ := startDaemon(t, dir, "-chaos")
	create := map[string]any{"id": "c", "protocol": "smi", "n": 4, "seed": 1,
		"edges": [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	if code := postJSON(t, base+"/v1/tenants", create, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	code := postJSON(t, base+"/v1/tenants/c/mutations", map[string]any{"op": "chaos_panic"}, &errBody)
	if code != http.StatusServiceUnavailable || !strings.Contains(errBody.Error, "quarantined") {
		t.Fatalf("chaos_panic with -chaos: code %d body %+v", code, errBody)
	}
	sig <- syscall.SIGTERM
	if exit := <-done; exit != 0 {
		t.Fatalf("drain with quarantined tenant: exit %d", exit)
	}
}
