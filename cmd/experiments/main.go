// Command experiments regenerates the paper-reproduction tables (E1–E10)
// recorded in EXPERIMENTS.md. Each experiment checks one claim of the
// paper — a theorem, a lemma, the transition diagram, the counterexample,
// or the baseline comparison — and reports PASS or FAIL.
//
// Examples:
//
//	experiments                    # full sweep, text tables
//	experiments -quick             # reduced sweep (CI-sized)
//	experiments -markdown          # markdown tables for EXPERIMENTS.md
//	experiments -id E7 -trials 50  # a single experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"selfstab/internal/chart"
	"selfstab/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		quick    = flag.Bool("quick", false, "reduced sweep")
		markdown = flag.Bool("markdown", false, "render markdown instead of text")
		id       = flag.String("id", "", "run a single experiment (E1..E10)")
		seed     = flag.Int64("seed", 0, "override seed (0 = default)")
		trials   = flag.Int("trials", 0, "override trials per cell (0 = default)")
		sizes    = flag.String("sizes", "", "override size sweep, e.g. 8,16,32")
		csvDir   = flag.String("csv", "", "also write each table as <dir>/<ID>.csv (figure series data)")
		charts   = flag.Bool("charts", false, "render ASCII charts of the headline series after each table")
	)
	flag.Parse()

	opt := harness.DefaultOptions()
	if *quick {
		opt = harness.QuickOptions()
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *trials != 0 {
		opt.Trials = *trials
	}
	if *sizes != "" {
		opt.Sizes = nil
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 {
				log.Fatalf("bad -sizes entry %q", part)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}

	if *id != "" {
		e, ok := harness.ByID(*id)
		if !ok {
			log.Fatalf("unknown experiment %q", *id)
		}
		tbl := e.Run(opt)
		render(tbl, *markdown)
		writeCSV(tbl, *csvDir)
		if *charts {
			renderChart(tbl)
		}
		if !tbl.Passed {
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, e := range harness.All() {
		tbl := e.Run(opt)
		render(tbl, *markdown)
		writeCSV(tbl, *csvDir)
		if *charts {
			renderChart(tbl)
		}
		if !tbl.Passed {
			failed++
		}
	}
	fmt.Printf("experiments failed: %d\n", failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// chartSpecs maps experiments to their headline series, when one makes
// sense as a line chart.
var chartSpecs = map[string][3]string{
	"E1":  {"topology", "n", "rounds max"},
	"E5":  {"topology", "n", "rounds max"},
	"E7":  {"topology", "n", "slowdown"},
	"E12": {"protocol", "K", "rounds mean"},
}

// renderChart draws the experiment's headline series as ASCII, when the
// experiment has one.
func renderChart(tbl *harness.Table) {
	spec, ok := chartSpecs[tbl.ID]
	if !ok {
		return
	}
	series, err := chart.SeriesFromTable(tbl, spec[0], spec[1], spec[2])
	if err != nil {
		log.Printf("chart %s: %v", tbl.ID, err)
		return
	}
	title := fmt.Sprintf("%s: %s vs %s", tbl.ID, spec[2], spec[1])
	if err := chart.Render(os.Stdout, title, 64, 16, series...); err != nil {
		log.Printf("chart %s: %v", tbl.ID, err)
	}
	fmt.Println()
}

// writeCSV dumps the table as <dir>/<ID>.csv when dir is set.
func writeCSV(tbl *harness.Table, dir string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
}

func render(tbl *harness.Table, markdown bool) {
	var err error
	if markdown {
		err = tbl.RenderMarkdown(os.Stdout)
	} else {
		err = tbl.Render(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !tbl.Passed {
		fmt.Println("FAILED")
	}
}
