// Command experiments regenerates the paper-reproduction tables (E1–E15)
// recorded in EXPERIMENTS.md. Each experiment checks one claim of the
// paper — a theorem, a lemma, the transition diagram, the counterexample,
// or the baseline comparison — and reports PASS or FAIL.
//
// Examples:
//
//	experiments                    # full sweep, text tables
//	experiments -quick             # reduced sweep (CI-sized)
//	experiments -markdown          # markdown tables for EXPERIMENTS.md
//	experiments -id E7 -trials 50  # a single experiment
//	experiments -workers 8         # cap the per-experiment worker pool
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"selfstab/internal/chart"
	"selfstab/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, tables go
// to stdout, diagnostics to stderr, and the process exit code is
// returned (0 ok, 1 experiment failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	logger := log.New(stderr, "experiments: ", 0)
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "reduced sweep")
		markdown = fs.Bool("markdown", false, "render markdown instead of text")
		id       = fs.String("id", "", "run a single experiment (E1..E15)")
		seed     = fs.Int64("seed", 0, "override seed (0 = default)")
		trials   = fs.Int("trials", 0, "override trials per cell (0 = default)")
		sizes    = fs.String("sizes", "", "override size sweep, e.g. 8,16,32")
		workers  = fs.Int("workers", runtime.NumCPU(), "worker goroutines per experiment (results are identical for any value)")
		csvDir   = fs.String("csv", "", "also write each table as <dir>/<ID>.csv (figure series data)")
		charts   = fs.Bool("charts", false, "render ASCII charts of the headline series after each table")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt := harness.DefaultOptions()
	if *quick {
		opt = harness.QuickOptions()
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *trials != 0 {
		opt.Trials = *trials
	}
	opt.Workers = *workers
	if *sizes != "" {
		opt.Sizes = nil
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 {
				logger.Printf("bad -sizes entry %q", part)
				return 2
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}

	emit := func(e harness.Experiment) (*harness.Table, bool) {
		start := time.Now()
		tbl := e.Run(opt)
		tbl.Elapsed = time.Since(start)
		if ok := render(tbl, *markdown, stdout, logger); !ok {
			return tbl, false
		}
		if ok := writeCSV(tbl, *csvDir, logger); !ok {
			return tbl, false
		}
		if *charts {
			renderChart(tbl, stdout, logger)
		}
		return tbl, true
	}

	if *id != "" {
		e, ok := harness.ByID(*id)
		if !ok {
			logger.Printf("unknown experiment %q", *id)
			return 2
		}
		tbl, ok := emit(e)
		if !ok {
			return 2
		}
		if !tbl.Passed {
			return 1
		}
		return 0
	}

	failed := 0
	for _, e := range harness.All() {
		tbl, ok := emit(e)
		if !ok {
			return 2
		}
		if !tbl.Passed {
			failed++
		}
	}
	fmt.Fprintf(stdout, "experiments failed: %d\n", failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// chartSpecs maps experiments to their headline series, when one makes
// sense as a line chart.
var chartSpecs = map[string][3]string{
	"E1":  {"topology", "n", "rounds max"},
	"E5":  {"topology", "n", "rounds max"},
	"E7":  {"topology", "n", "slowdown"},
	"E12": {"protocol", "K", "rounds mean"},
}

// renderChart draws the experiment's headline series as ASCII, when the
// experiment has one.
func renderChart(tbl *harness.Table, stdout io.Writer, logger *log.Logger) {
	spec, ok := chartSpecs[tbl.ID]
	if !ok {
		return
	}
	series, err := chart.SeriesFromTable(tbl, spec[0], spec[1], spec[2])
	if err != nil {
		logger.Printf("chart %s: %v", tbl.ID, err)
		return
	}
	title := fmt.Sprintf("%s: %s vs %s", tbl.ID, spec[2], spec[1])
	if err := chart.Render(stdout, title, 64, 16, series...); err != nil {
		logger.Printf("chart %s: %v", tbl.ID, err)
	}
	fmt.Fprintln(stdout)
}

// writeCSV dumps the table as <dir>/<ID>.csv when dir is set.
func writeCSV(tbl *harness.Table, dir string, logger *log.Logger) bool {
	if dir == "" {
		return true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		logger.Print(err)
		return false
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		logger.Print(err)
		return false
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		logger.Print(err)
		return false
	}
	return true
}

func render(tbl *harness.Table, markdown bool, stdout io.Writer, logger *log.Logger) bool {
	var err error
	if markdown {
		err = tbl.RenderMarkdown(stdout)
	} else {
		err = tbl.Render(stdout)
	}
	if err != nil {
		logger.Print(err)
		return false
	}
	if !tbl.Passed {
		fmt.Fprintln(stdout, "FAILED")
	}
	return true
}
