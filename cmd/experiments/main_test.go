package main

import (
	"strings"
	"testing"
)

func TestRunUnknownID(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-id", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr = %q, want unknown-experiment diagnostic", errOut.String())
	}
}

func TestRunSingleID(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-id", "E4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E4:") {
		t.Fatalf("stdout missing E4 table:\n%s", out.String())
	}
	if strings.Contains(out.String(), "E1:") {
		t.Fatalf("-id E4 also ran E1:\n%s", out.String())
	}
}

func TestRunBadSizes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-id", "E4", "-sizes", "8,zap"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bad -sizes") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunStampsElapsedFooter(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-id", "E4", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "cells/sec") {
		t.Fatalf("stdout missing timing footer:\n%s", out.String())
	}
}
