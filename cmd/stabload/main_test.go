package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func runLoad(t *testing.T, args ...string) (Report, int, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	var rep Report
	if code == 0 {
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("report is not JSON: %v\n%s", err, out.String())
		}
	}
	return rep, code, errw.String()
}

func TestLoadSmokeInProcess(t *testing.T) {
	rep, code, errs := runLoad(t,
		"-duration", "300ms", "-workers", "2", "-tenants", "2", "-n", "8", "-seed", "42")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if rep.Requests == 0 || rep.Status["200"] == 0 {
		t.Fatalf("no successful traffic: %+v", rep)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.LatencyMs)
	}
	if rep.RetryAfterMissing != 0 {
		t.Fatalf("%d degraded responses lacked Retry-After", rep.RetryAfterMissing)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors against an in-process server", rep.TransportErrors)
	}
}

// TestLoadProvokesBackpressure tightens the limits until the degradation
// ladder must fire, then checks it degraded politely: 429/503 responses
// present, every one carrying Retry-After.
func TestLoadProvokesBackpressure(t *testing.T) {
	rep, code, errs := runLoad(t,
		"-duration", "400ms", "-workers", "8", "-tenants", "1", "-n", "8",
		"-rate", "2", "-burst", "1", "-queue", "1", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	degraded := rep.Status["429"] + rep.Status["503"]
	if degraded == 0 {
		t.Fatalf("tight limits provoked no 429/503: %+v", rep.Status)
	}
	if rep.RetryAfterMissing != 0 {
		t.Fatalf("%d degraded responses lacked Retry-After (ok=%d)", rep.RetryAfterMissing, rep.RetryAfterOK)
	}
	if rep.RetryAfterOK != degraded {
		t.Fatalf("Retry-After tally %d does not match degraded count %d", rep.RetryAfterOK, degraded)
	}
}

// TestLoadWriteHeavyReportsFsyncRatio drives a mutation-dominated mix
// and checks the report's server-side counters: mutations happened,
// their rate is derived, and fsyncs-per-mutation is coherent (group
// commit can only make it <= ~1; well under 1 when batches form).
func TestLoadWriteHeavyReportsFsyncRatio(t *testing.T) {
	rep, code, errs := runLoad(t,
		"-duration", "400ms", "-workers", "4", "-tenants", "1", "-n", "8",
		"-mutate", "1", "-rate", "100000", "-burst", "100000", "-seed", "11")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if rep.Mutations == 0 {
		t.Fatalf("write-heavy run recorded no server-side mutations: %+v", rep)
	}
	if rep.MutationsPerSec <= 0 {
		t.Fatalf("mutations/sec not derived: %+v", rep)
	}
	if rep.Fsyncs == 0 {
		t.Fatalf("no fsyncs reported for %d mutations", rep.Mutations)
	}
	// Each mutation fsyncs at most once (group commit only merges);
	// converge-free mixes never exceed one fsync per mutation, modulo
	// the final checkpoint-free commit accounting.
	if rep.FsyncsPerMutation > 1.5 {
		t.Fatalf("fsyncs/mutation = %.2f, want <= 1", rep.FsyncsPerMutation)
	}
	if rep.Status["200"] == 0 {
		t.Fatalf("no successful mutations: %+v", rep.Status)
	}
}

func TestLoadReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errw bytes.Buffer
	code := run([]string{
		"-duration", "150ms", "-workers", "1", "-tenants", "1", "-n", "4", "-out", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("written report is not JSON: %v", err)
	}
	if rep.Requests == 0 {
		t.Fatal("written report recorded no requests")
	}
}

func TestLoadFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-workers", "0"}, &out, &errw); code != 2 {
		t.Fatalf("zero workers: exit %d, want 2", code)
	}
	if code := run([]string{"-not-a-flag"}, &out, &errw); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}
