// Command stabload is a closed-loop traffic generator for selfstabd.
// It hammers a daemon with a configurable read/write mix (default ~80%
// status/membership/snapshot/node reads, ~20% topology mutations and
// corruptions; raise -mutate for write-heavy runs) from N workers, then
// reports latency percentiles, the status-code breakdown, and the
// server-reported mutation/fsync deltas as JSON — so the group-commit
// amortization (fsyncs per mutation) shows up in load reports.
//
//	stabload -addr http://127.0.0.1:8080 -tenants 4 -workers 8 -duration 5s
//	stabload -duration 2s -rate 50 -burst 10   # self-hosted in-process run
//	stabload -duration 5s -mutate 0.9          # write-heavy mix
//
// With no -addr it boots an in-process service on a throwaway data
// directory, which is how the CI load-smoke step runs: the point is not
// absolute numbers but that overload answers with 429/503 plus a
// Retry-After header instead of collapsing — the report counts any
// degraded response missing the header so the smoke can assert zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"selfstab/internal/service"
	"selfstab/internal/stats"
)

// Report is the JSON document stabload emits.
type Report struct {
	Requests          int64          `json:"requests"`
	DurationSec       float64        `json:"duration_sec"`
	RPS               float64        `json:"rps"`
	Status            map[string]int `json:"status"`
	RetryAfterOK      int            `json:"retry_after_ok"`
	RetryAfterMissing int            `json:"retry_after_missing"`
	TransportErrors   int            `json:"transport_errors"`
	LatencyMs         Latency        `json:"latency_ms"`
	// Mutations/Fsyncs are server-reported /varz deltas across the run;
	// FsyncsPerMutation is the group-commit amortization ratio (1.0 means
	// per-entry fsync, well under 1.0 means batches are forming).
	Mutations         int64   `json:"mutations"`
	MutationsPerSec   float64 `json:"mutations_per_sec"`
	Fsyncs            int64   `json:"fsyncs"`
	FsyncsPerMutation float64 `json:"fsyncs_per_mutation"`
}

// Latency is the percentile summary of request latencies.
type Latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// workerStats is one worker's private tally, merged after the run so
// the hot loop never contends on a shared lock.
type workerStats struct {
	latencies []float64 // milliseconds
	status    map[int]int
	retryOK   int
	retryMiss int
	errors    int
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("stabload", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "", "daemon base URL; empty boots an in-process service")
	tenants := fs.Int("tenants", 2, "tenant graphs to create and target")
	n := fs.Int("n", 32, "nodes per tenant graph")
	workers := fs.Int("workers", 4, "concurrent closed-loop workers")
	duration := fs.Duration("duration", 2*time.Second, "how long to generate load")
	seed := fs.Int64("seed", 1, "rng seed for the traffic mix")
	mutate := fs.Float64("mutate", 0.2, "fraction of requests that are mutations (0..1; 0.8+ is a write-heavy mix)")
	rate := fs.Float64("rate", 0, "in-process only: per-tenant rate limit (0 = service default)")
	burst := fs.Int("burst", 0, "in-process only: per-tenant burst (0 = service default)")
	queue := fs.Int("queue", 0, "in-process only: per-tenant queue depth (0 = service default)")
	outPath := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tenants < 1 || *workers < 1 || *n < 2 {
		fmt.Fprintln(errw, "stabload: need -tenants >= 1, -workers >= 1, -n >= 2")
		return 2
	}
	if *mutate < 0 || *mutate > 1 {
		fmt.Fprintln(errw, "stabload: -mutate must be in [0, 1]")
		return 2
	}

	base := *addr
	if base == "" {
		dir, err := os.MkdirTemp("", "stabload-*")
		if err != nil {
			fmt.Fprintf(errw, "stabload: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		svc, err := service.Open(service.Options{
			DataDir: dir, RatePerSec: *rate, Burst: *burst, QueueDepth: *queue,
		})
		if err != nil {
			fmt.Fprintf(errw, "stabload: open service: %v\n", err)
			return 1
		}
		defer svc.Kill()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(errw, "stabload: listen: %v\n", err)
			return 1
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(errw, "stabload: in-process service at %s (data %s)\n", base, dir)
	}

	ids, err := ensureTenants(base, *tenants, *n, *seed)
	if err != nil {
		fmt.Fprintf(errw, "stabload: %v\n", err)
		return 1
	}

	before, verr := fetchVarz(base)
	if verr != nil {
		fmt.Fprintf(errw, "stabload: varz before run: %v (mutation/fsync deltas will be zero)\n", verr)
	}
	rep := generate(base, ids, *n, *workers, *duration, *seed, *mutate)
	if verr == nil {
		after, err := fetchVarz(base)
		if err != nil {
			fmt.Fprintf(errw, "stabload: varz after run: %v (mutation/fsync deltas will be zero)\n", err)
		} else {
			rep.Mutations = after.Mutations - before.Mutations
			rep.Fsyncs = after.Fsyncs - before.Fsyncs
			if rep.DurationSec > 0 {
				rep.MutationsPerSec = float64(rep.Mutations) / rep.DurationSec
			}
			if rep.Mutations > 0 {
				rep.FsyncsPerMutation = float64(rep.Fsyncs) / float64(rep.Mutations)
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(errw, "stabload: %v\n", err)
			return 1
		}
		defer f.Close()
		enc = json.NewEncoder(f)
		enc.SetIndent("", "  ")
		fmt.Fprintf(errw, "stabload: report written to %s\n", *outPath)
	}
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(errw, "stabload: %v\n", err)
		return 1
	}
	return 0
}

// ensureTenants creates the target tenants (ring topologies), tolerating
// ones that already exist from a previous run against the same daemon.
func ensureTenants(base string, tenants, n int, seed int64) ([]string, error) {
	protocols := []string{"smm", "smi"}
	ids := make([]string, 0, tenants)
	for i := 0; i < tenants; i++ {
		proto := protocols[i%len(protocols)]
		id := fmt.Sprintf("load-%s-%d", proto, i)
		edges := make([][2]int, n)
		for v := 0; v < n; v++ {
			edges[v] = [2]int{v, (v + 1) % n}
		}
		body, _ := json.Marshal(map[string]any{
			"id": id, "protocol": proto, "n": n, "seed": seed + int64(i), "edges": edges,
		})
		resp, err := http.Post(base+"/v1/tenants", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("create %s: %w", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return nil, fmt.Errorf("create %s: status %d", id, resp.StatusCode)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// fetchVarz reads the daemon counters the report's delta fields need.
func fetchVarz(base string) (varzSnapshot, error) {
	resp, err := http.Get(base + "/varz")
	if err != nil {
		return varzSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return varzSnapshot{}, fmt.Errorf("varz: status %d", resp.StatusCode)
	}
	var v varzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return varzSnapshot{}, err
	}
	return v, nil
}

// varzSnapshot is the subset of /varz the report consumes.
type varzSnapshot struct {
	Mutations int64 `json:"mutations"`
	Fsyncs    int64 `json:"fsyncs"`
}

// generate runs the closed-loop workers and merges their tallies.
func generate(base string, ids []string, n, workers int, duration time.Duration, seed int64, mutate float64) Report {
	deadline := time.Now().Add(duration)
	all := make([]workerStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			client := &http.Client{Timeout: 10 * time.Second}
			ws := &all[w]
			ws.status = make(map[int]int)
			for time.Now().Before(deadline) {
				oneRequest(client, base, ids, n, rng, ws, mutate)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := Report{Status: map[string]int{}, DurationSec: elapsed}
	var lat []float64
	for i := range all {
		ws := &all[i]
		lat = append(lat, ws.latencies...)
		for code, cnt := range ws.status {
			rep.Status[fmt.Sprintf("%d", code)] += cnt
		}
		rep.RetryAfterOK += ws.retryOK
		rep.RetryAfterMissing += ws.retryMiss
		rep.TransportErrors += ws.errors
		rep.Requests += int64(len(ws.latencies)) + int64(ws.errors)
	}
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.LatencyMs = Latency{
			P50: stats.Percentile(lat, 50),
			P90: stats.Percentile(lat, 90),
			P99: stats.Percentile(lat, 99),
			Max: lat[len(lat)-1],
		}
	}
	return rep
}

// oneRequest issues one draw from the traffic mix and records it.
func oneRequest(client *http.Client, base string, ids []string, n int, rng *rand.Rand, ws *workerStats, mutate float64) {
	id := ids[rng.Intn(len(ids))]
	var (
		resp *http.Response
		err  error
	)
	began := time.Now()
	if rng.Float64() < 1-mutate {
		// Read mix: status, membership, snapshot, single node.
		var path string
		switch rng.Intn(4) {
		case 0:
			path = "/v1/tenants/" + id
		case 1:
			path = "/v1/tenants/" + id + "/membership"
		case 2:
			path = "/v1/tenants/" + id + "/snapshot"
		default:
			path = fmt.Sprintf("/v1/tenants/%s/nodes/%d", id, rng.Intn(n))
		}
		resp, err = client.Get(base + path)
	} else {
		// Mutation mix: corruption bursts and link flaps.
		var m service.Mutation
		switch rng.Intn(3) {
		case 0:
			k := 1 + rng.Intn(3)
			nodes := make([]int, k)
			for i := range nodes {
				nodes[i] = rng.Intn(n)
			}
			m = service.Mutation{Op: service.OpCorrupt, Nodes: nodes}
		case 1:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			m = service.Mutation{Op: service.OpAddEdge, U: &u, V: &v}
		default:
			u := rng.Intn(n)
			v := (u + 1) % n
			m = service.Mutation{Op: service.OpRemoveEdge, U: &u, V: &v}
		}
		body, _ := json.Marshal(m)
		resp, err = client.Post(base+"/v1/tenants/"+id+"/mutations", "application/json", bytes.NewReader(body))
	}
	if err != nil {
		ws.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ws.latencies = append(ws.latencies, float64(time.Since(began).Microseconds())/1000)
	ws.status[resp.StatusCode]++
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if resp.Header.Get("Retry-After") != "" {
			ws.retryOK++
		} else {
			ws.retryMiss++
		}
	}
}
