package main

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/detrand"
	"selfstab/internal/analysis/exhaustive"
	"selfstab/internal/analysis/guarded"
	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/lockorder"
	"selfstab/internal/analysis/mapiter"
	"selfstab/internal/analysis/noalloc"
	"selfstab/internal/analysis/purity"
	"selfstab/internal/analysis/shardsafe"
)

// TestSuiteAcceptsSchedulerPackages is the regression pin for the
// frontier scheduler and the sharded executor built on it: the full
// analyzer bundle this command ships must report zero diagnostics over
// the packages that work touches — the CSR/frontier/partition layer in
// internal/graph, the batch and shard kernels in internal/core, the
// executors (including the sharded barrier runtime in internal/sim),
// and the fault hooks. A new diagnostic here means either the scheduler
// gained a real determinism or locking hazard, or an analyzer gained a
// false positive; both need a human before the pin moves.
func TestSuiteAcceptsSchedulerPackages(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/internal/graph",
			"selfstab/internal/core",
			"selfstab/internal/faults",
			"selfstab/internal/sim",
			"selfstab/internal/beacon",
			"selfstab/internal/runtime",
		},
		detrand.New(), mapiter.New(), guarded.New(),
		purity.New(), exhaustive.New(), lockorder.New(),
		noalloc.New(), shardsafe.New())
}

// TestSuiteAcceptsServicePackage pins the selfstabd service layer at
// zero diagnostics under the full bundle. The interesting analyzers
// here are guarded (every mu-guarded tenant field is only touched by
// functions that visibly lock — the single-writer event loop makes the
// lock seams safe, the analyzer makes them auditable), exhaustive
// (every mutation-op switch handles every Op* constant, so adding an op
// without wiring validation/apply/replay fails the lint, not a replay),
// and mapiter (every map that reaches a response or a snapshot is
// drained in sorted order, keeping the journal byte-replayable).
func TestSuiteAcceptsServicePackage(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{"selfstab/internal/service"},
		detrand.New(), mapiter.New(), guarded.New(),
		purity.New(), exhaustive.New(), lockorder.New(),
		noalloc.New(), shardsafe.New())
}
