package main

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/ctxflow"
	"selfstab/internal/analysis/detrand"
	"selfstab/internal/analysis/exhaustive"
	"selfstab/internal/analysis/guarded"
	"selfstab/internal/analysis/lint"
	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/lockorder"
	"selfstab/internal/analysis/mapiter"
	"selfstab/internal/analysis/noalloc"
	"selfstab/internal/analysis/purity"
	"selfstab/internal/analysis/shardsafe"
	"selfstab/internal/analysis/singlewriter"
	"selfstab/internal/analysis/walorder"
)

// suite returns the full analyzer bundle this command ships, matching
// main.go's unit.Main registration.
func suite(t *testing.T) []*lint.Analyzer {
	t.Helper()
	return []*lint.Analyzer{
		detrand.New(), mapiter.New(), guarded.New(),
		purity.New(), exhaustive.New(), lockorder.New(),
		noalloc.New(), shardsafe.New(),
		walorder.New(), singlewriter.New(), ctxflow.New(),
	}
}

// TestSuiteAcceptsSchedulerPackages is the regression pin for the
// frontier scheduler and the sharded executor built on it: the full
// analyzer bundle this command ships must report zero diagnostics over
// the packages that work touches — the CSR/frontier/partition layer in
// internal/graph, the batch and shard kernels in internal/core, the
// executors (including the sharded barrier runtime in internal/sim),
// and the fault hooks. A new diagnostic here means either the scheduler
// gained a real determinism or locking hazard, or an analyzer gained a
// false positive; both need a human before the pin moves.
func TestSuiteAcceptsSchedulerPackages(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/internal/graph",
			"selfstab/internal/core",
			"selfstab/internal/faults",
			"selfstab/internal/sim",
			"selfstab/internal/beacon",
			"selfstab/internal/runtime",
		},
		suite(t)...)
}

// TestSuiteAcceptsServicePackage pins the selfstabd service layer at
// zero diagnostics under the full bundle. The interesting analyzers
// here are guarded (every mu-guarded tenant field is only touched by
// functions that visibly lock — the single-writer event loop makes the
// lock seams safe, the analyzer makes them auditable), exhaustive
// (every mutation-op switch handles every Op* constant, so adding an op
// without wiring validation/apply/replay fails the lint, not a replay),
// mapiter (every map that reaches a response or a snapshot is drained
// in sorted order, keeping the journal byte-replayable), and the
// service-invariant tier: walorder (the //selfstab:durable fields seq
// and the dedup window are journal-dominated everywhere outside the
// one reasoned //lint:ignore seam in prepare — group commit's
// buffered-append-then-commitBatch shape satisfies W1 structurally,
// since the batch fsync dominates the first apply), singlewriter (the
// //selfstab:owner fields are written only from tenant.loop's call
// graph), and ctxflow (ctx threads through, durability errors are
// consumed). A new diagnostic here means the crash-recovery discipline
// changed; the pin moves only with a reasoned suppression or a fix.
func TestSuiteAcceptsServicePackage(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{"selfstab/internal/service"},
		suite(t)...)
}

// TestSuiteAcceptsCommandPackages pins the binaries that sit on top of
// the service and executor layers: the daemon (a ctxflow scope target —
// its drain context roots at the annotated run function) and the load
// harness. These packages marshal responses and aggregate results from
// maps, so mapiter and detrand are the historical risks here.
func TestSuiteAcceptsCommandPackages(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/cmd/selfstabd",
			"selfstab/cmd/stabload",
		},
		suite(t)...)
}
