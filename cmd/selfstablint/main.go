// Command selfstablint is the repository's determinism and concurrency
// lint suite: a vet tool bundling the custom analyzers that make the
// determinism contract structural rather than sampled.
//
//	detrand  — threaded randomness and clock-free code in deterministic packages
//	mapiter  — no map-iteration order reaching an output without a canonical sort
//	guarded  — `// guarded by <mu>` field annotations hold
//
// It is not run directly; the go command drives it one package at a
// time:
//
//	go build -o bin/selfstablint ./cmd/selfstablint
//	go vet -vettool=bin/selfstablint ./...
//
// which is what `make lint` does. See docs/STATIC_ANALYSIS.md for the
// contract, the annotation syntax, and the suppression syntax.
package main

import (
	"selfstab/internal/analysis/detrand"
	"selfstab/internal/analysis/guarded"
	"selfstab/internal/analysis/mapiter"
	"selfstab/internal/analysis/unit"
)

func main() {
	unit.Main(detrand.New(), mapiter.New(), guarded.New())
}
