// Command selfstablint is the repository's determinism and concurrency
// lint suite: a vet tool bundling the custom analyzers that make the
// determinism contract structural rather than sampled.
//
//	detrand      — threaded randomness and clock-free code in deterministic packages
//	mapiter      — no map-iteration order reaching an output without a canonical sort
//	guarded      — `// guarded by <mu>` field annotations hold
//	purity       — protocol Move rules are pure functions of the local View
//	exhaustive   — switches over enum-like constant sets cover every member
//	lockorder    — the cross-package mutex acquisition order is acyclic
//	noalloc      — //selfstab:noalloc functions perform no heap allocation
//	shardsafe    — ShardKernel commit/mark phases honor shard write ownership
//	walorder     — //selfstab:durable mutations are journal-dominated; snapshots are atomic
//	singlewriter — //selfstab:owner fields are touched only from the owning event loop
//	ctxflow      — ctx threads through request paths; durability errors are consumed
//
// purity, exhaustive, and lockorder are the dataflow tier: purity and
// lockorder run flow-sensitive analyses over internal/analysis/cfg
// control-flow graphs and exchange function summaries and acquisition
// edges between packages through the driver's fact files. noalloc and
// shardsafe are the allocation/shard-isolation tier: noalloc threads
// interprocedural allocation summaries (and annotated interface
// contracts) through the same fact files, and shardsafe runs a
// must-analysis over the CFG proving every state-vector access in a
// shard kernel is derived from the shard's owned batch or the CSR rows.
// walorder, singlewriter, and ctxflow are the service-invariant tier:
// they pin the crash-recovery discipline of internal/service — journal
// append dominates every durable mutation, only the tenant event loop
// touches loop-owned fields, and cancellation and durability errors
// propagate — exchanging durable-field sets, owner sets, and journal
// obligations through the same fact files.
//
// It is not run directly; the go command drives it one package at a
// time:
//
//	go build -o bin/selfstablint ./cmd/selfstablint
//	go vet -vettool=bin/selfstablint ./...
//
// which is what `make lint` does. `make lint-sarif` additionally merges
// per-package findings into a SARIF report for code scanning. See
// docs/STATIC_ANALYSIS.md for the contract, the annotation syntax, and
// the suppression syntax.
package main

import (
	"selfstab/internal/analysis/ctxflow"
	"selfstab/internal/analysis/detrand"
	"selfstab/internal/analysis/exhaustive"
	"selfstab/internal/analysis/guarded"
	"selfstab/internal/analysis/lockorder"
	"selfstab/internal/analysis/mapiter"
	"selfstab/internal/analysis/noalloc"
	"selfstab/internal/analysis/purity"
	"selfstab/internal/analysis/shardsafe"
	"selfstab/internal/analysis/singlewriter"
	"selfstab/internal/analysis/unit"
	"selfstab/internal/analysis/walorder"
)

func main() {
	unit.Main(detrand.New(), mapiter.New(), guarded.New(),
		purity.New(), exhaustive.New(), lockorder.New(),
		noalloc.New(), shardsafe.New(),
		walorder.New(), singlewriter.New(), ctxflow.New())
}
