package selfstab

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
)

// TestIntegrationMobileBeaconSMM is the paper's deployment scenario end
// to end: hosts move by random waypoint, the discrete-event beacon link
// layer carries the protocol, and the maximal matching is verified after
// every mobility epoch.
func TestIntegrationMobileBeaconSMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	way := NewWaypoint(20, 0.25, 0.03, rng)
	g := way.Graph().Clone()

	prm := DefaultBeaconParams()
	prm.Jitter = 0.15
	prm.Loss = 0.05

	states := NewSMMConfig(g).States
	net := NewBeaconNetwork[Pointer](NewSMM(), g, states, prm, rng)
	if res := net.Run(1000, 6); !res.Stable {
		t.Fatalf("initial: %v", res)
	}

	for epoch := 0; epoch < 8; epoch++ {
		events := way.Step()
		if !IsConnected(way.Graph()) {
			continue // the paper assumes coordinated movement keeps connectivity
		}
		for _, ev := range events {
			if ev.Add {
				net.AddLink(ev.Edge.U, ev.Edge.V)
			} else {
				net.RemoveLink(ev.Edge.U, ev.Edge.V)
			}
		}
		if res := net.Run(net.Now()+2000, 8); !res.Stable {
			t.Fatalf("epoch %d: %v", epoch, res)
		}
		if err := IsMaximalMatching(g, MatchingOf(net.Config())); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	st := net.LinkStats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("no beacon traffic: %+v", st)
	}
}

// TestIntegrationConcurrentChurnSMI drives the goroutine runtime through
// repeated churn epochs, verifying the MIS each time.
func TestIntegrationConcurrentChurnSMI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomConnected(25, 0.12, rng)
	net := NewConcurrentNetwork[bool](NewSMI(), g, make([]bool, g.N()))
	defer net.Close()

	for epoch := 0; epoch < 10; epoch++ {
		rounds, _, stable := net.Run(g.N() + 2)
		if !stable {
			t.Fatalf("epoch %d: unstable after %d rounds", epoch, rounds)
		}
		mis := SetOf(net.Config())
		if err := IsMaximalIndependentSet(g, mis); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if err := IsMinimalDominatingSet(g, mis); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		net.ApplyEvents(NewChurn(g, rng).Apply(3))
	}
}

// TestIntegrationSpanningTreeUnderBeacons runs the multicast-tree
// extension on the asynchronous beacon layer with link churn.
func TestIntegrationSpanningTreeUnderBeacons(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(15, 0.2, rng)
	p := NewSpanningTree(g.N())
	states := make([]TreeState, g.N())
	srng := rand.New(rand.NewSource(7))
	for v := range states {
		states[v] = p.Random(NodeID(v), g.Neighbors(NodeID(v)), srng)
	}
	net := NewBeaconNetwork[TreeState](p, g, states, DefaultBeaconParams(), rng)
	if res := net.Run(5000, 8); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	if err := VerifyTree(g, net.Config().States); err != nil {
		t.Fatal(err)
	}
	// Drop a non-cut tree edge: the subtree must re-attach.
	for _, e := range TreeEdges(net.Config().States) {
		g2 := g.Clone()
		g2.RemoveEdge(e.U, e.V)
		if IsConnected(g2) {
			net.RemoveLink(e.U, e.V)
			break
		}
	}
	if res := net.Run(net.Now()+5000, 10); !res.Stable {
		t.Fatalf("after tree-edge failure: %v", res)
	}
	if err := VerifyTree(g, net.Config().States); err != nil {
		t.Fatal(err)
	}
}

// TestSoakMobilityEpochs is the endurance run: 200 churn epochs against
// the concurrent runtime with verification after every epoch. Skipped
// under -short.
func TestSoakMobilityEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	g := RandomConnected(40, 0.08, rng)
	p := NewSMM()
	states := make([]Pointer, g.N())
	srng := rand.New(rand.NewSource(1))
	for v := range states {
		states[v] = p.Random(NodeID(v), g.Neighbors(NodeID(v)), srng)
	}
	net := NewConcurrentNetwork[Pointer](p, g, states)
	defer net.Close()
	for epoch := 0; epoch < 200; epoch++ {
		rounds, _, stable := net.Run(g.N() + 2)
		if !stable {
			t.Fatalf("epoch %d: unstable after %d rounds", epoch, rounds)
		}
		if err := IsMaximalMatching(g, MatchingOf(net.Config())); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		net.ApplyEvents(NewChurn(g, rng).Apply(1 + rng.Intn(4)))
	}
}

// TestSoakBeaconLongRun drives the event-driven link layer through a
// long mobile scenario with loss. Skipped under -short.
func TestSoakBeaconLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	way := NewWaypoint(25, 0.22, 0.02, rng)
	g := way.Graph().Clone()
	prm := DefaultBeaconParams()
	prm.Loss = 0.08
	prm.Jitter = 0.25
	states := make([]bool, g.N())
	net := NewBeaconNetwork[bool](NewSMI(), g, states, prm, rng)
	for epoch := 0; epoch < 40; epoch++ {
		if res := net.Run(net.Now()+4000, 8); !res.Stable {
			t.Fatalf("epoch %d: %v", epoch, res)
		}
		if err := IsMaximalIndependentSet(g, SetOf(net.Config())); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		events := way.Step()
		if !IsConnected(way.Graph()) {
			continue
		}
		for _, ev := range events {
			if ev.Add {
				net.AddLink(ev.Edge.U, ev.Edge.V)
			} else {
				net.RemoveLink(ev.Edge.U, ev.Edge.V)
			}
		}
	}
	st := net.LinkStats()
	if st.Lost == 0 {
		t.Fatal("loss process never fired in a 8% loss soak")
	}
}

// TestIntegrationExhaustiveFacade drives the model checker through the
// facade on a small instance.
func TestIntegrationExhaustiveFacade(t *testing.T) {
	g := Cycle(5)
	rep, err := ExploreAll[Pointer](NewSMM(), g, SMMDomain, 1<<16, func(states []Pointer) error {
		cfg := Config[Pointer]{G: g, States: states}
		return IsMaximalMatching(g, MatchingOf(cfg))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 || rep.MaxRounds > g.N()+1 {
		t.Fatalf("report: %v", rep)
	}
	_ = core.Null // keep the internal import honest: facade and core interoperate
}
