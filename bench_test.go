// Benchmarks regenerating every experiment table (E1–E10) plus
// micro-benchmarks of the hot paths and ablations of SMM's rule-policy
// choices. Run with:
//
//	go test -bench=. -benchmem
//
// The BenchmarkE* benches execute one full experiment trial per
// iteration, so their ns/op is the cost of reproducing one data point of
// the corresponding table; the harness (cmd/experiments) aggregates the
// statistics the tables report.
package selfstab

import (
	"io"
	"math/rand"
	"testing"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/daemon"
	"selfstab/internal/graph"
	"selfstab/internal/harness"
	"selfstab/internal/modelcheck"
	"selfstab/internal/protocols"
	"selfstab/internal/sim"
)

// benchGraph returns the standard benchmark topology: a 64-node sparse
// random connected graph, regenerated identically each call.
func benchGraph() *graph.Graph {
	return graph.RandomConnected(64, 0.08, rand.New(rand.NewSource(42)))
}

func benchSMMConfig(g *graph.Graph, seed int64) core.Config[core.Pointer] {
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(seed)))
	return cfg
}

// BenchmarkE1_SMMConvergence measures one Theorem 1 trial: random state
// to maximal matching on the standard graph.
func BenchmarkE1_SMMConvergence(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), benchSMMConfig(g, int64(i)))
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE2_TypeCensus measures the Figure 2/3 instrumentation: a full
// run with per-round classification and transition recording.
func BenchmarkE2_TypeCensus(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchSMMConfig(g, int64(i))
		before := core.ClassifySMM(cfg)
		var m core.TransitionMatrix
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
		l.RunHook(g.N()+2, func(_ int, c core.Config[core.Pointer]) {
			after := core.ClassifySMM(c)
			m.Record(before, after)
			before = after
		})
		if len(m.Violations()) != 0 {
			b.Fatal("diagram violation")
		}
	}
}

// BenchmarkE3_MatchingGrowth measures a run instrumented with per-round
// matching extraction (Lemmas 9–10).
func BenchmarkE3_MatchingGrowth(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), benchSMMConfig(g, int64(i)))
		prev := 0
		l.RunHook(g.N()+2, func(_ int, c core.Config[core.Pointer]) {
			prev = 2 * len(core.MatchingOf(c))
		})
		_ = prev
	}
}

// BenchmarkE4_Counterexample measures 100 rounds of the oscillating
// arbitrary-proposal variant on C4.
func BenchmarkE4_Counterexample(b *testing.B) {
	g := graph.Cycle(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig[core.Pointer](g)
		for j := range cfg.States {
			cfg.States[j] = core.Null
		}
		l := sim.NewLockstep[core.Pointer](core.NewSMMArbitrary(), cfg)
		if res := l.Run(100); res.Stable {
			b.Fatal("counterexample stabilized")
		}
	}
}

// BenchmarkE5_SMIConvergence measures one Theorem 2 trial.
func BenchmarkE5_SMIConvergence(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[bool](core.NewSMI(), cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE6_SMIWaveWorstCase measures the descending-ID path — the
// adversarial workload of the Theorem 2 wave argument.
func BenchmarkE6_SMIWaveWorstCase(b *testing.B) {
	n := 128
	perm := make([]graph.NodeID, n)
	for i := range perm {
		perm[i] = graph.NodeID(n - 1 - i)
	}
	g := graph.Path(n).Relabel(perm)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig[bool](g)
		l := sim.NewLockstep[bool](core.NewSMI(), cfg)
		if res := l.Run(n + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE7_SMM and BenchmarkE7_RefinedHsuHuang are the two sides of
// the Section 3 comparison on identical graphs; the ns/op ratio mirrors
// the rounds ratio of table E7.
func BenchmarkE7_SMM(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), benchSMMConfig(g, int64(i)))
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkE7_RefinedHsuHuang(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref := protocols.Refine[core.Pointer](protocols.NewHsuHuang(), g.N(), int64(i))
		cfg := core.NewConfig[protocols.RefState[core.Pointer]](g)
		cfg.Randomize(ref, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[protocols.RefState[core.Pointer]](ref, cfg)
		if res := l.Run(500 * g.N()); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE8_Restabilize measures stabilize → churn → re-stabilize.
func BenchmarkE8_Restabilize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		g := graph.RandomConnected(64, 0.08, rng)
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(core.NewSMM(), rng)
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
		NewChurn(g, rng).Apply(4)
		core.NormalizeSMM(cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE9_BeaconModel measures a full discrete-event run with jitter
// and delays on the standard graph.
func BenchmarkE9_BeaconModel(b *testing.B) {
	g := benchGraph()
	prm := beacon.DefaultParams()
	prm.Jitter = 0.2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		states := make([]core.Pointer, g.N())
		for v := range states {
			states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
		}
		net := beacon.NewNetwork[core.Pointer](core.NewSMM(), g.Clone(), states, prm, rng)
		if res := net.Run(float64(50*g.N()), 6); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE10_Coloring, _RandMIS and _HsuHuangCentral cover the
// extension rows of table E10.
func BenchmarkE10_Coloring(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := protocols.NewColoring()
		cfg := core.NewConfig[int](g)
		cfg.Randomize(p, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[int](p, cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkE10_RandMIS(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := protocols.NewRandMIS(g.N(), int64(i))
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[bool](p, cfg)
		if res := l.Run(1000 * g.N()); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkE10_SpanningTree(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := protocols.NewSpanningTree(g.N())
		cfg := core.NewConfig[protocols.TreeState](g)
		cfg.Randomize(p, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[protocols.TreeState](p, cfg)
		if res := l.Run(5*g.N() + 10); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkE10_HsuHuangCentral(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		p := protocols.NewHsuHuang()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		r := daemon.NewRunner[core.Pointer](p, cfg, daemon.NewCentral[core.Pointer](daemon.PickRandom, rng))
		if res := r.Run(50 * g.N() * g.N()); !res.Stable {
			b.Fatal(res)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkRoundSMM measures a single synchronous round on the standard
// graph (the inner loop of every experiment).
func BenchmarkRoundSMM(b *testing.B) {
	g := benchGraph()
	cfg := benchSMMConfig(g, 1)
	l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

// BenchmarkRoundSMI measures a single SMI round.
func BenchmarkRoundSMI(b *testing.B) {
	g := benchGraph()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(1)))
	l := sim.NewLockstep[bool](core.NewSMI(), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

// BenchmarkParallelRound1W/4W measure one parallel round on a large
// graph with 1 vs. 4 workers — the scaling headroom of the data-parallel
// executor relative to BenchmarkRoundSMMLarge's serial baseline. On a
// single-core machine (like the CI container this repository was
// developed in) the worker pool can only add overhead; the speedup
// materializes with GOMAXPROCS > 1.
func BenchmarkRoundSMMLarge(b *testing.B) {
	g := graph.RandomConnected(4096, 0.002, rand.New(rand.NewSource(42)))
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(1)))
	l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

func BenchmarkParallelRound1W(b *testing.B) { benchParallelRound(b, 1) }
func BenchmarkParallelRound4W(b *testing.B) { benchParallelRound(b, 4) }

func benchParallelRound(b *testing.B, workers int) {
	g := graph.RandomConnected(4096, 0.002, rand.New(rand.NewSource(42)))
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(1)))
	l := sim.NewParallel[core.Pointer](core.NewSMM(), cfg, workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

// BenchmarkClassify measures the six-type classification.
func BenchmarkClassify(b *testing.B) {
	g := benchGraph()
	cfg := benchSMMConfig(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ClassifySMM(cfg)
	}
}

// BenchmarkConcurrentRound measures one goroutine-barrier round of the
// concurrent runtime (communication overhead vs. BenchmarkRoundSMM).
func BenchmarkConcurrentRound(b *testing.B) {
	g := benchGraph()
	net := NewConcurrentNetwork[core.Pointer](core.NewSMM(), g, NewSMMConfig(g).States)
	defer net.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// --- Ablations of SMM's policy choices ---

// BenchmarkAblationProposeMinID / ProposeMaxID compare the two
// consistent proposal orders (both provably stabilize; the bench shows
// the choice is performance-neutral).
func BenchmarkAblationProposeMinID(b *testing.B) {
	benchProposal(b, core.ProposeMinID)
}

func BenchmarkAblationProposeMaxID(b *testing.B) {
	benchProposal(b, core.ProposeMaxID)
}

func benchProposal(b *testing.B, pol core.ProposalPolicy) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &core.SMM{Proposal: pol}
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[core.Pointer](p, cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkAblationAcceptMaxID exercises the R1 accept-policy knob.
func BenchmarkAblationAcceptMaxID(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &core.SMM{Accept: core.AcceptMaxID}
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rand.New(rand.NewSource(int64(i))))
		l := sim.NewLockstep[core.Pointer](p, cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// BenchmarkE11_ExhaustiveSMM model-checks all 2187 configurations of SMM
// on C7 (one table-E11 cell per iteration).
func BenchmarkE11_ExhaustiveSMM(b *testing.B) {
	g := graph.Cycle(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := modelcheck.Explore[core.Pointer](core.NewSMM(), g, modelcheck.SMMDomain, 1<<20, nil)
		if err != nil || rep.Divergent != 0 {
			b.Fatalf("rep=%v err=%v", rep, err)
		}
	}
}

// BenchmarkE11_ExhaustiveSMI model-checks all 4096 configurations of SMI
// on C12.
func BenchmarkE11_ExhaustiveSMI(b *testing.B) {
	g := graph.Cycle(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := modelcheck.Explore[bool](core.NewSMI(), g, modelcheck.SMIDomain, 1<<20, nil)
		if err != nil || rep.Divergent != 0 {
			b.Fatalf("rep=%v err=%v", rep, err)
		}
	}
}

// BenchmarkHarnessQuick runs the entire quick experiment sweep — the
// one-number regression check for the whole reproduction.
func BenchmarkHarnessQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if failed, err := harness.RunAll(harness.QuickOptions(), io.Discard, false); err != nil || failed != 0 {
			b.Fatalf("failed=%d err=%v", failed, err)
		}
	}
}

// BenchmarkHarnessE1Workers1/4 measure one full E1 table with the cell
// pool pinned to 1 vs. 4 workers. The tables are byte-identical by
// construction (per-cell derived seeds); the ratio is the harness-level
// parallel speedup. As with BenchmarkParallelRound, a single-core
// machine shows only pool overhead — the speedup needs GOMAXPROCS > 1.
func BenchmarkHarnessE1Workers1(b *testing.B) { benchHarnessE1(b, 1) }
func BenchmarkHarnessE1Workers4(b *testing.B) { benchHarnessE1(b, 4) }

func benchHarnessE1(b *testing.B, workers int) {
	opt := harness.QuickOptions()
	opt.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := harness.E1SMMConvergence(opt); !tbl.Passed {
			b.Fatal("E1 failed")
		}
	}
}

// BenchmarkExploreSharded measures the sharded model checker on SMM/C9
// (19683 configurations) with 4 workers against the serial
// BenchmarkE11_ExhaustiveSMM baseline shape.
func BenchmarkExploreSharded(b *testing.B) {
	g := graph.Cycle(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := modelcheck.ExploreWorkers[core.Pointer](core.NewSMM(), g, modelcheck.SMMDomain, 1<<20, nil, 4)
		if err != nil || rep.Divergent != 0 {
			b.Fatalf("rep=%v err=%v", rep, err)
		}
	}
}

// --- Large-n convergence benchmarks ---
//
// The BenchmarkLarge_* family is the frontier-scheduler workload: full
// E1/E5-style convergence trials on graphs one to two orders of
// magnitude past the 64-node standard graph, on both sparse random
// topologies (expected degree ~8) and geometric unit-disk graphs (the
// paper's ad hoc radio model). Late rounds move only a handful of
// nodes, so the gap between full-scan and active-frontier scheduling
// grows with n here. `make bench-json` records exactly this family in
// BENCH_1.json; `make bench-diff` guards it against regression.

// largeSparse returns a connected sparse random graph with expected
// degree ~8, regenerated identically each call.
func largeSparse(n int) *graph.Graph {
	return graph.RandomConnected(n, 8.0/float64(n), rand.New(rand.NewSource(42)))
}

// largeDisk returns a connected random unit-disk graph on n nodes.
func largeDisk(n int) *graph.Graph {
	g, _ := graph.RandomUnitDisk(n, 0.02, rand.New(rand.NewSource(42)))
	return g
}

func benchLargeSMM(b *testing.B, g *graph.Graph) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchSMMConfig(g, int64(i))
		b.StartTimer()
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func benchLargeSMI(b *testing.B, g *graph.Graph) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(int64(i))))
		b.StartTimer()
		l := sim.NewLockstep[bool](core.NewSMI(), cfg)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkLarge_SMMSparse1024(b *testing.B) { benchLargeSMM(b, largeSparse(1024)) }
func BenchmarkLarge_SMMSparse4096(b *testing.B) { benchLargeSMM(b, largeSparse(4096)) }
func BenchmarkLarge_SMMDisk1024(b *testing.B)   { benchLargeSMM(b, largeDisk(1024)) }
func BenchmarkLarge_SMMDisk4096(b *testing.B)   { benchLargeSMM(b, largeDisk(4096)) }
func BenchmarkLarge_SMISparse1024(b *testing.B) { benchLargeSMI(b, largeSparse(1024)) }
func BenchmarkLarge_SMISparse4096(b *testing.B) { benchLargeSMI(b, largeSparse(4096)) }
func BenchmarkLarge_SMIDisk1024(b *testing.B)   { benchLargeSMI(b, largeDisk(1024)) }

// BenchmarkLarge_SMMSparse1024Parallel4W is the data-parallel executor
// on the same workload, for the frontier × worker-pool interaction.
func BenchmarkLarge_SMMSparse1024Parallel4W(b *testing.B) {
	g := largeSparse(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchSMMConfig(g, int64(i))
		b.StartTimer()
		l := sim.NewParallel[core.Pointer](core.NewSMM(), cfg, 4)
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

// The BenchmarkShard1M_* family is the sharded executor at deliverable
// scale: one million nodes, sparse (expected degree 8) and unit-disk
// (expected degree ~10) topologies, at 1/2/4/8 shards. Each iteration
// restores the same random initial configuration and converges from
// scratch on a pre-built executor, so steady-state iterations allocate
// nothing (the first convergence, before the timer, warms the drain
// buffers and spawns the worker pool). As with the Parallel benches,
// the single-shard-vs-many ratio on a GOMAXPROCS=1 machine shows only
// barrier overhead — the near-linear speedup materializes with
// GOMAXPROCS > 1, one core per shard.

// megaSparseG/megaDiskG cache the million-node topologies: construction
// costs seconds and every shard count reuses the same graph. Benchmarks
// run sequentially, so plain lazy initialization suffices.
var (
	megaSparseG *graph.Graph
	megaDiskG   *graph.Graph
)

func megaSparse() *graph.Graph {
	if megaSparseG == nil {
		megaSparseG = graph.RandomSparseConnected(1_000_000, 8, rand.New(rand.NewSource(42)))
	}
	return megaSparseG
}

func megaDisk() *graph.Graph {
	if megaDiskG == nil {
		pts := graph.RandomPoints(1_000_000, rand.New(rand.NewSource(42)))
		// r chosen for expected degree pi*r^2*n ~ 10.
		megaDiskG = graph.UnitDiskGrid(pts, 0.0018)
	}
	return megaDiskG
}

func benchShardSMM(b *testing.B, g *graph.Graph, shards int) {
	cfg := benchSMMConfig(g, 42)
	start := append([]core.Pointer(nil), cfg.States...)
	l := sim.NewShardedLockstep[core.Pointer](core.NewSMM(), cfg, shards)
	defer l.Close()
	if res := l.Run(g.N() + 2); !res.Stable {
		b.Fatal(res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(cfg.States, start)
		b.StartTimer()
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func benchShardSMI(b *testing.B, g *graph.Graph, shards int) {
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(42)))
	start := append([]bool(nil), cfg.States...)
	l := sim.NewShardedLockstep[bool](core.NewSMI(), cfg, shards)
	defer l.Close()
	if res := l.Run(g.N() + 2); !res.Stable {
		b.Fatal(res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(cfg.States, start)
		b.StartTimer()
		if res := l.Run(g.N() + 2); !res.Stable {
			b.Fatal(res)
		}
	}
}

func BenchmarkShard1M_SMMSparse1(b *testing.B) { benchShardSMM(b, megaSparse(), 1) }
func BenchmarkShard1M_SMMSparse2(b *testing.B) { benchShardSMM(b, megaSparse(), 2) }
func BenchmarkShard1M_SMMSparse4(b *testing.B) { benchShardSMM(b, megaSparse(), 4) }
func BenchmarkShard1M_SMMSparse8(b *testing.B) { benchShardSMM(b, megaSparse(), 8) }
func BenchmarkShard1M_SMISparse1(b *testing.B) { benchShardSMI(b, megaSparse(), 1) }
func BenchmarkShard1M_SMISparse2(b *testing.B) { benchShardSMI(b, megaSparse(), 2) }
func BenchmarkShard1M_SMISparse4(b *testing.B) { benchShardSMI(b, megaSparse(), 4) }
func BenchmarkShard1M_SMISparse8(b *testing.B) { benchShardSMI(b, megaSparse(), 8) }
func BenchmarkShard1M_SMMDisk1(b *testing.B)   { benchShardSMM(b, megaDisk(), 1) }
func BenchmarkShard1M_SMMDisk8(b *testing.B)   { benchShardSMM(b, megaDisk(), 8) }

// BenchmarkShard1M_QuietRound8 is the steady-state round: the network
// has stabilized, every per-shard frontier is empty, and a Step is just
// K range drains finding nothing. This is the zero-allocation hot loop
// a long-lived million-node deployment spends almost all its time in.
func BenchmarkShard1M_QuietRound8(b *testing.B) {
	g := megaSparse()
	cfg := benchSMMConfig(g, 42)
	l := sim.NewShardedLockstep[core.Pointer](core.NewSMM(), cfg, 8)
	defer l.Close()
	if res := l.Run(g.N() + 2); !res.Stable {
		b.Fatal(res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Step() != 0 {
			b.Fatal("moved in a quiet round")
		}
	}
}
